"""The discrete-event simulation engine.

Two interchangeable scheduler cores sit behind one :class:`Simulator` front:

* ``queue="calendar"`` (the default) -- a **hierarchical calendar queue**
  keyed on link-delay quanta.  Near-future events append to fixed-width time
  buckets (O(1)); each bucket is sorted once when the clock reaches it.
  Above level 0 sit up to ``num_levels - 1`` further bucket arrays with
  geometrically wider buckets (each level ``num_buckets`` times wider than
  the one below), so propagation-scale horizons -- WAN links hundreds to
  thousands of serialization quanta long -- are still O(1) appends; a slot
  *cascades* down one level when its window approaches.  Only events beyond
  the top level's horizon live in a heap-backed *far-future band* and
  migrate into the hierarchy as the windows rotate forward.  A dedicated
  **hashed timer wheel**
  stages cancellable timers (:meth:`Simulator.set_timer`): cancellation is an
  O(1) mark and cancelled timers are dropped wholesale when their wheel slot
  is flushed -- the set-then-cancel retransmission pattern of the transports
  never creates tombstones in the sorted structures at all.
* ``queue="heap"`` -- the original binary-heap loop, kept as an escape hatch
  and as the reference for determinism tests.  Cancelled events are
  tombstones compacted away when they dominate the heap.

Both cores execute events in exactly the same order: time is kept in seconds
as a float and event ordering between equal timestamps is FIFO by insertion
order (a single ``(time, seq)`` key shared by regular events and timers), so
runs are fully deterministic for a given seed and **byte-for-byte identical
across cores** -- ``tests/test_engine_determinism.py`` pins this.

The core is selected per instance (``Simulator(queue=...)``) or process-wide
with the ``REPRO_ENGINE`` environment variable.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
from bisect import insort
from typing import Any, Callable, Optional

#: Structures smaller than this are never compacted/swept -- scanning them
#: costs more than letting the drain loops discard the tombstones.
_COMPACT_MIN_SIZE = 2048

#: Default calendar-queue bucket width.  One bucket per link-delay quantum is
#: the sweet spot; the experiment runner passes the configured MTU
#: serialization time explicitly (see ``run_experiment``).
DEFAULT_BUCKET_WIDTH_S = 1e-6

#: Default number of calendar buckets (rounded up to a power of two).
DEFAULT_NUM_BUCKETS = 256

#: Default number of hierarchical calendar levels.  With 256 buckets and a
#: ~3 us batch quantum, level 0 spans ~0.8 ms, level 1 ~0.2 s and level 2
#: ~54 s -- WAN propagation delays land in level 1 as O(1) appends instead
#: of overflow-heap pushes.  ``num_levels=1`` is the pre-hierarchy
#: single-quantum calendar, bit for bit.
DEFAULT_NUM_LEVELS = 3

#: Default timer-wheel slot width.  Retransmission timeouts are 100us-64ms,
#: so a 64us slot keeps the wheel shallow while still batching cancellations.
DEFAULT_WHEEL_SLOT_S = 64e-6

_INF = float("inf")


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire in the
    order they were scheduled.  Cancelled events are skipped, without
    running, when the engine reaches them; in the calendar core a cancelled
    timer parked on the wheel is dropped in O(1) when its slot flushes.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple = ()) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}{state})"

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is reached."""
        self.cancelled = True


class Simulator:
    """Event loop, simulation clock and random-number source.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  Every stochastic
        component (workload generation, ECN marking, ECMP tie-breaks) draws
        from this RNG so a run is reproducible from its seed.
    queue:
        Scheduler core: ``"calendar"`` (default) or ``"heap"``.  ``None``
        reads the ``REPRO_ENGINE`` environment variable before falling back
        to the default.  Both cores execute identical event orders.
    bucket_width_s, num_buckets, wheel_slot_s, num_levels:
        Calendar-core tuning knobs (ignored by the heap core): level-0 bucket
        width in seconds (ideally one link-delay quantum), per-level bucket
        count (rounded to a power of two), timer-wheel slot width, and the
        number of hierarchical calendar levels (each level's buckets are
        ``num_buckets`` times wider than the level below; ``1`` selects the
        flat single-quantum calendar).
    """

    #: Name of the scheduler core (``"heap"`` / ``"calendar"`` /
    #: ``"calendar_c"``).
    queue_kind: str = "abstract"

    #: Event class used at every construction site.  The compiled core
    #: swaps in the C extension type; ordering semantics are identical.
    _event_cls: type = Event

    def __new__(
        cls,
        seed: int = 0,
        queue: Optional[str] = None,
        **kwargs: Any,
    ) -> "Simulator":
        if cls is Simulator:
            name = queue or os.environ.get("REPRO_ENGINE") or "calendar"
            try:
                impl = _QUEUE_IMPLS[name]
            except KeyError:
                raise ValueError(
                    f"unknown engine queue {name!r}; valid: {sorted(_QUEUE_IMPLS)}"
                ) from None
            if impl is _CCalendarSimulator and compiled_event_class() is None:
                # Always-working fallback: the compiled core degrades to the
                # pure-Python calendar when the extension has not been built.
                impl = _CalendarSimulator
            return super().__new__(impl)
        return super().__new__(cls)

    def __init__(
        self,
        seed: int = 0,
        queue: Optional[str] = None,
        *,
        bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        wheel_slot_s: float = DEFAULT_WHEEL_SLOT_S,
        num_levels: int = DEFAULT_NUM_LEVELS,
    ) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._seq = itertools.count()
        self._events_scheduled = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._stopped = False
        #: Execution trace: when a list, every executed event appends
        #: ``(time, seq)``.  Off (None) by default -- the verify harness
        #: enables it to check monotone-clock and cross-core order identity.
        self._trace: Optional[list] = None

    # ------------------------------------------------------------------
    # Scheduling (shared surface)
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulation time ``time``."""
        raise NotImplementedError

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule a *cancellable timer* ``delay`` seconds from now.

        Semantically identical to :meth:`schedule`, but optimized for the
        set-then-cancel pattern (retransmission timeouts): the calendar core
        parks timers on a hashed wheel where cancellation is O(1) unlinking
        and a cancelled timer never touches the sorted event structures.
        The heap core maps this to a plain :meth:`schedule`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule a timer in the past (delay={delay})")
        return self.set_timer_at(self.now + delay, fn, *args)

    def set_timer_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Absolute-time form of :meth:`set_timer`."""
        raise NotImplementedError

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event or timer (no-op for ``None``)."""
        if event is not None:
            event.cancelled = True

    # ------------------------------------------------------------------
    # Execution (shared surface)
    # ------------------------------------------------------------------
    @property
    def events_scheduled(self) -> int:
        """Number of events ever created via ``schedule*``/``set_timer*``.

        Accounting identity (checked by the verify harness at all times)::

            events_scheduled == events_processed + events_cancelled + pending_events

        Cancelled-but-not-yet-discarded events still count as pending; they
        migrate to :attr:`events_cancelled` when a drain loop, compaction,
        sweep or wheel flush discards them.
        """
        return self._events_scheduled

    @property
    def events_processed(self) -> int:
        """Number of events that have been executed so far."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of cancelled events discarded without running.

        Counts every discard, whichever structure held the event: heap pops
        and compactions, calendar bucket drains and sweeps, overflow-band
        discards, and timer-wheel slot flushes.
        """
        return self._events_cancelled

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled ones not yet discarded)."""
        raise NotImplementedError

    def enable_trace(self) -> list:
        """Record ``(time, seq)`` for every executed event from now on.

        Returns the (live) trace list.  Two cores fed the same workload must
        produce byte-identical traces; the times must be non-decreasing.
        Tracing is off by default and costs one ``None``-check per event.
        """
        if self._trace is None:
            self._trace = []
        return self._trace

    @property
    def trace(self) -> Optional[list]:
        """The execution trace (``None`` unless :meth:`enable_trace` ran)."""
        return self._trace

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next *live* event would be later than this time; the
            head event stays queued, so a later ``run`` call resumes exactly
            where this one stopped.  On return the clock is advanced to
            ``until`` whenever the simulation did not already reach it *and*
            no live event at or before ``until`` remains queued (i.e. the
            queue emptied or only later events remain); :meth:`stop` always
            suppresses the advance, and the ``max_events`` valve does so only
            when it left live events at or before ``until`` unexecuted.
        max_events:
            Safety valve: stop once this many events have been *executed*.
            Cancelled events never run and do not count against the valve;
            they are tallied separately in :attr:`events_cancelled`.
            (Termination is still guaranteed: cancelled events cannot
            schedule new events, so discarding them only shrinks the queue.)
        """
        raise NotImplementedError

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Run until no events remain (or ``max_events`` were executed)."""
        self.run(until=None, max_events=max_events)


class _HeapSimulator(Simulator):
    """The original binary-heap core (``queue="heap"``).

    Cancelled events are *tombstones*: they stay in the heap and are discarded
    when they reach the head.  Because the transports set and almost always
    cancel one retransmission timer per data packet, tombstones can outnumber
    live events; the core therefore compacts the heap in place whenever the
    dead fraction grows past one half (amortized O(1) per event).
    """

    queue_kind = "heap"

    def __init__(self, seed: int = 0, queue: Optional[str] = None, **kwargs: Any) -> None:
        super().__init__(seed, queue, **kwargs)
        self._heap: list[Event] = []
        self._compact_watermark = _COMPACT_MIN_SIZE

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (time={time}, now={self.now})"
            )
        event = self._event_cls(time, next(self._seq), fn, args)
        self._events_scheduled += 1
        heap = self._heap
        heapq.heappush(heap, event)
        if len(heap) >= self._compact_watermark:
            self._compact()
        return event

    #: Timers are plain events on the heap core (cancel leaves a tombstone).
    set_timer_at = schedule_at

    def _compact(self) -> None:
        """Drop cancelled tombstones if they dominate the heap.

        Called whenever the heap grows past a watermark.  The watermark
        doubles with the surviving heap so the O(n) scan is amortized O(1)
        per scheduled event.
        """
        heap = self._heap
        live = [event for event in heap if not event.cancelled]
        if 2 * len(live) <= len(heap):
            self._events_cancelled += len(heap) - len(live)
            # Replace contents in place: ``run`` holds a reference to the
            # list, so the object identity must be preserved.
            heap[:] = live
            heapq.heapify(heap)
        self._compact_watermark = max(_COMPACT_MIN_SIZE, 2 * len(heap))

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self._stopped = False
        # Hot path: bind everything the loop touches to locals.  This loop
        # runs hundreds of thousands of times per simulated second, so each
        # avoided attribute/global lookup is measurable (see
        # benchmarks/perf_engine.py).
        heap = self._heap
        heappop = heapq.heappop
        trace = self._trace
        executed = 0
        cancelled = 0
        try:
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    cancelled += 1
                    continue
                time = event.time
                if until is not None and time > until:
                    break
                heappop(heap)
                self.now = time
                if trace is not None:
                    trace.append((time, event.seq))
                event.fn(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._events_processed += executed
            self._events_cancelled += cancelled
        if until is not None and not self._stopped and self.now < until:
            # Discard tombstones so the advance decision sees the live head.
            while heap and heap[0].cancelled:
                heappop(heap)
                self._events_cancelled += 1
            if not heap or heap[0].time > until:
                self.now = until


class _CalendarSimulator(Simulator):
    """Hierarchical calendar-queue core with a far-future band and a hashed
    timer wheel.

    Three bands, by event horizon:

    * **levels** -- ``num_levels`` cascading bucket arrays.  Level 0 is the
      classic calendar: fixed-width time buckets covering the rotating
      window ``(win_lo, win_hi)`` of bucket indices.  Each level above it
      uses buckets ``num_buckets`` times wider than the level below, so one
      top-level window spans ``num_buckets ** num_levels`` level-0 quanta.
      Every level index is the level-0 index (``int(time * inv_width)``)
      shifted right by ``k * level`` bits (``num_buckets == 2**k``) -- one
      shared float computation, so cross-level boundaries are exact and
      insertion/cascade routing can never disagree by one ulp.  Insertion
      is an O(1) append at whichever level's window covers the event; a
      bucket is sorted (by the shared ``(time, seq)`` key) only when the
      clock reaches it.  The level-0 bucket currently draining (``_cur``)
      stays sorted, so same-time insertions during callbacks ``insort``
      into it.  When level 0 empties, the minimal occupied slot of the
      lowest non-empty level *cascades* down one level (rebasing the window
      below to exactly cover it), repeating until level 0 refills.
    * **far-future band** -- a heap for events beyond the top level's window
      (with the default three levels, tens of simulated seconds out).  When
      every level empties, the windows are rebased onto the heap's head and
      everything inside the new top window migrates directly to its final
      level.
    * **wheel** -- a hashed timer wheel (``dict`` of slot -> list) staging
      :meth:`set_timer` timers.  A slot is flushed into the calendar only
      when execution is about to pass its start time; timers cancelled
      before then -- the overwhelmingly common case for retransmission
      timers -- are dropped during the flush without ever entering the
      sorted bands.

    Window invariant linking the levels: ``win_hi[lvl-1] >= (win_lo[lvl] +
    1) << k`` (equality after every cascade/rebase), so any event refused by
    level ``lvl-1``'s window provably lies past level ``lvl``'s floor and
    the insertion loop only has to check upper bounds.  The bands are
    strictly time-ordered -- every level-``lvl`` event precedes every
    level-``lvl+1`` event precedes the far-future heap -- which is what
    makes cascading the minimal slot always the correct progress step.

    Execution order is identical to the heap core: every pop yields the
    globally minimal ``(time, seq)``.
    """

    queue_kind = "calendar"

    def __init__(
        self,
        seed: int = 0,
        queue: Optional[str] = None,
        *,
        bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        wheel_slot_s: float = DEFAULT_WHEEL_SLOT_S,
        num_levels: int = DEFAULT_NUM_LEVELS,
    ) -> None:
        super().__init__(seed, queue)
        if bucket_width_s <= 0:
            raise ValueError("bucket_width_s must be positive")
        if wheel_slot_s <= 0:
            raise ValueError("wheel_slot_s must be positive")
        if num_buckets < 1:
            raise ValueError("num_buckets must be positive")
        if num_levels < 1:
            raise ValueError("num_levels must be positive")
        nb = 1
        while nb < num_buckets:
            nb *= 2
        self._nb = nb
        self._mask = nb - 1
        self._inv_width = 1.0 / bucket_width_s
        self.bucket_width_s = bucket_width_s
        self._buckets: list[list[Event]] = [[] for _ in range(nb)]
        self._num_bucketed = 0
        #: Min-heap of absolute indices of occupied buckets (pushed on each
        #: empty->non-empty transition; entries gone stale through sweeps are
        #: dropped lazily).  Finding the next non-empty bucket is O(log n)
        #: even when occupancy is sparse -- no linear window scans.
        self._bucket_heads: list[int] = []
        #: Bucket indices are *absolute* (int(time / width)); the window
        #: covers (win_lo, win_hi) and only ever moves forward.
        self._win_lo = -1
        self._win_hi = nb - 1
        self._cur: list[Event] = []
        self._cur_idx = 0
        # Hierarchy ----------------------------------------------------
        #: Bits between adjacent level indices (level-lvl index is the
        #: level-0 index >> (_shift * lvl)).  A 1-bucket calendar has no
        #: index bit to shift, so the hierarchy degenerates to one level.
        self._shift = nb.bit_length() - 1
        self.num_levels = num_levels if self._shift else 1
        self._num_levels = self.num_levels
        nlv = self._num_levels
        #: Per upper level (index 0 unused): bucket array, occupied-slot
        #: min-heap, event count, and the (lo, hi)-exclusive window in that
        #: level's index units.  Initial windows mirror level 0's.
        self._hi_buckets: list[list[list[Event]]] = [
            [[] for _ in range(nb)] if lvl else [] for lvl in range(nlv)
        ]
        self._hi_heads: list[list[int]] = [[] for _ in range(nlv)]
        self._hi_counts: list[int] = [0] * nlv
        self._hi_lo: list[int] = [-1] * nlv
        self._hi_hi: list[int] = [nb - 1] * nlv
        self._overflow: list[Event] = []
        # Timer wheel --------------------------------------------------
        self._inv_wheel = 1.0 / wheel_slot_s
        self.wheel_slot_s = wheel_slot_s
        self._wheel: dict[int, list[Event]] = {}
        self._wheel_heads: list[int] = []   # min-heap of occupied slot indices
        self._wheel_count = 0
        self._wheel_next_due = _INF         # start time of the earliest slot
        self._wheel_flushed_thru = -1       # highest slot index already flushed
        # Tombstone sweeping ------------------------------------------
        self._since_sweep = 0
        self._sweep_watermark = _COMPACT_MIN_SIZE

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (time={time}, now={self.now})"
            )
        event = self._event_cls(time, next(self._seq), fn, args)
        self._events_scheduled += 1
        # Inlined _insert: this is the hottest schedule path.
        idx = int(time * self._inv_width)
        if idx > self._win_lo:
            if idx < self._win_hi:
                bucket = self._buckets[idx & self._mask]
                if not bucket:
                    heapq.heappush(self._bucket_heads, idx)
                bucket.append(event)
                self._num_bucketed += 1
            else:
                self._insert_high(event, idx)
        else:
            insort(self._cur, event, lo=self._cur_idx)
        self._since_sweep += 1
        if self._since_sweep >= self._sweep_watermark:
            self._sweep()
        return event

    def set_timer_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule a timer in the past (time={time}, now={self.now})"
            )
        slot = int(time * self._inv_wheel)
        if slot <= self._wheel_flushed_thru:
            # The slot's flush horizon already passed: behave like schedule.
            event = self._event_cls(time, next(self._seq), fn, args)
            self._events_scheduled += 1
            self._insert(event)
            return event
        event = self._event_cls(time, next(self._seq), fn, args)
        self._events_scheduled += 1
        bucket = self._wheel.get(slot)
        if bucket is None:
            self._wheel[slot] = [event]
            heapq.heappush(self._wheel_heads, slot)
            self._wheel_next_due = self._wheel_heads[0] / self._inv_wheel
        else:
            bucket.append(event)
        self._wheel_count += 1
        self._since_sweep += 1
        if self._since_sweep >= self._sweep_watermark:
            self._sweep()
        return event

    def _insert(self, event: Event) -> None:
        """Route an event into the band its time falls in (wheel excluded)."""
        idx = int(event.time * self._inv_width)
        if idx > self._win_lo:
            if idx < self._win_hi:
                bucket = self._buckets[idx & self._mask]
                if not bucket:
                    heapq.heappush(self._bucket_heads, idx)
                bucket.append(event)
                self._num_bucketed += 1
            else:
                self._insert_high(event, idx)
        else:
            insort(self._cur, event, lo=self._cur_idx)

    def _insert_high(self, event: Event, idx: int) -> None:
        """Route an event past the level-0 window into the first upper level
        whose window still covers it, else the far-future heap.

        Only upper bounds are checked: ``idx >= win_hi[lvl-1]`` (the reason
        we are here) already implies ``(idx >> k) > win_lo[lvl]`` via the
        window invariant, so a single comparison per level routes exactly.
        """
        k = self._shift
        hi = self._hi_hi
        for lvl in range(1, self._num_levels):
            hidx = idx >> (k * lvl)
            if hidx < hi[lvl]:
                bucket = self._hi_buckets[lvl][hidx & self._mask]
                if not bucket:
                    heapq.heappush(self._hi_heads[lvl], hidx)
                bucket.append(event)
                self._hi_counts[lvl] += 1
                return
        heapq.heappush(self._overflow, event)

    # ------------------------------------------------------------------
    # Wheel flushing and window rotation
    # ------------------------------------------------------------------
    def _flush_wheel(self, time: float) -> None:
        """Move every wheel slot starting at or before ``time`` into the
        calendar (dropping cancelled timers, which is where the O(1)-cancel
        pay-off lands)."""
        heads = self._wheel_heads
        wheel = self._wheel
        inv_wheel = self._inv_wheel
        heappop = heapq.heappop
        insert = self._insert
        # Due-ness is judged with the exact arithmetic that produced
        # ``_wheel_next_due`` (slot / inv_wheel).  Deriving a slot *limit*
        # via ``int(time * inv_wheel)`` instead can round one slot low when
        # ``time`` equals a slot boundary, leaving the due head unflushed --
        # and the caller spinning, since ``_wheel_next_due`` would be
        # recomputed unchanged.
        while heads and heads[0] / inv_wheel <= time:
            slot = heappop(heads)
            for event in wheel.pop(slot, ()):
                self._wheel_count -= 1
                if event.cancelled:
                    self._events_cancelled += 1
                else:
                    insert(event)
            if slot > self._wheel_flushed_thru:
                self._wheel_flushed_thru = slot
        self._wheel_next_due = heads[0] / self._inv_wheel if heads else _INF

    def _load_bucket(self) -> None:
        """Pop the next occupied level-0 bucket into ``_cur`` (the caller
        has checked ``_num_bucketed``)."""
        buckets = self._buckets
        mask = self._mask
        heads = self._bucket_heads
        heappop = heapq.heappop
        while heads:
            i = heappop(heads)
            # Stale-head checks: an index at or below win_lo is from a
            # bucket consumed or swept before a window rebase -- its slot
            # may since have been refilled by an ALIASED in-window index
            # (i' != i, i' & mask == i & mask), so the emptiness of the
            # slot alone is not proof of liveness.  The aliased index has
            # its own head entry, so dropping the stale one loses nothing.
            if i <= self._win_lo:
                continue
            lst = buckets[i & mask]
            if not lst:
                continue  # emptied by a sweep within the current window
            buckets[i & mask] = []
            self._num_bucketed -= len(lst)
            if len(lst) > 1:
                lst.sort()
            self._win_lo = i
            self._cur = lst
            self._cur_idx = 0
            return
        raise RuntimeError(
            "calendar-queue invariant violated: bucketed events not found in window"
        )

    def _cascade(self) -> bool:
        """Bring the minimal occupied slot of the lowest non-empty upper
        level down one level -- its window is about to be entered.

        The window of the level below is rebased to exactly cover the popped
        slot (restoring the invariant ``win_hi[lvl-1] == (win_lo[lvl] + 1)
        << k``) and the slot's events are redistributed by the same
        ``int(time * inv_width)`` + shift computation insertion used, so
        each lands in the slot insertion would have chosen.  Cancelled
        events are discarded here instead of travelling down.  Nothing
        executes during a cascade chain, so no insertion can observe an
        intermediate window state.  Returns ``False`` when every upper
        level is empty.
        """
        counts = self._hi_counts
        nlv = self._num_levels
        lvl = 1
        while lvl < nlv and not counts[lvl]:
            lvl += 1
        if lvl == nlv:
            return False
        heads = self._hi_heads[lvl]
        buckets = self._hi_buckets[lvl]
        mask = self._mask
        heappop = heapq.heappop
        lo = self._hi_lo[lvl]
        lst = None
        while heads:
            j = heappop(heads)
            if j <= lo:
                continue  # stale head (see _load_bucket)
            lst = buckets[j & mask]
            if lst:
                break
        if not lst:
            raise RuntimeError(
                "calendar-queue invariant violated: leveled events not found in window"
            )
        buckets[j & mask] = []
        counts[lvl] -= len(lst)
        self._hi_lo[lvl] = j
        k = self._shift
        inv_width = self._inv_width
        heappush = heapq.heappush
        cancelled = 0
        added = 0
        if lvl == 1:
            self._win_lo = (j << k) - 1
            self._win_hi = (j + 1) << k
            below = self._buckets
            below_heads = self._bucket_heads
            for event in lst:
                if event.cancelled:
                    cancelled += 1
                    continue
                idx = int(event.time * inv_width)
                bucket = below[idx & mask]
                if not bucket:
                    heappush(below_heads, idx)
                bucket.append(event)
                added += 1
            self._num_bucketed += added
        else:
            self._hi_lo[lvl - 1] = (j << k) - 1
            self._hi_hi[lvl - 1] = (j + 1) << k
            shift = k * (lvl - 1)
            below = self._hi_buckets[lvl - 1]
            below_heads = self._hi_heads[lvl - 1]
            for event in lst:
                if event.cancelled:
                    cancelled += 1
                    continue
                idx = int(event.time * inv_width) >> shift
                bucket = below[idx & mask]
                if not bucket:
                    heappush(below_heads, idx)
                bucket.append(event)
                added += 1
            counts[lvl - 1] += added
        self._events_cancelled += cancelled
        return True

    def _rebase(self, head_time: float) -> None:
        """Rebase every level's window onto the far-future head and migrate
        the heap's near-horizon events into the hierarchy.

        The migration bound uses the exact insertion computation
        (``int(time * inv_width)`` plus integer shifts) so float rounding
        can never place an event in a slot outside the scanned windows.
        With more than one level the top window spans ``nb**num_levels``
        level-0 buckets, so almost everything leaves the heap in one pass --
        each event landing directly at its final level -- and the heap keeps
        only the true far future.
        """
        inv_width = self._inv_width
        idx0 = int(head_time * inv_width)
        k = self._shift
        nlv = self._num_levels
        top = nlv - 1
        self._win_lo = idx0 - 1
        for lvl in range(1, nlv):
            h = idx0 >> (k * lvl)
            self._hi_lo[lvl] = h
            if lvl == 1:
                self._win_hi = (h + 1) << k
            else:
                self._hi_hi[lvl - 1] = (h + 1) << k
        top_shift = k * top
        top_hi = (idx0 >> top_shift) + self._nb - 1
        if top:
            self._hi_hi[top] = top_hi
        else:
            self._win_hi = top_hi
        overflow = self._overflow
        buckets = self._buckets
        mask = self._mask
        win_hi = self._win_hi
        heads = self._bucket_heads
        heappop = heapq.heappop
        heappush = heapq.heappush
        insert_high = self._insert_high
        while overflow and (int(overflow[0].time * inv_width) >> top_shift) < top_hi:
            event = heappop(overflow)
            if event.cancelled:
                self._events_cancelled += 1
                continue
            idx = int(event.time * inv_width)
            if idx < win_hi:
                bucket = buckets[idx & mask]
                if not bucket:
                    heappush(heads, idx)
                bucket.append(event)
                self._num_bucketed += 1
            else:
                insert_high(event, idx)

    def _step_sources(self) -> bool:
        """Make progress when ``_cur`` is exhausted: load the next non-empty
        level-0 bucket, cascade the lowest occupied upper level down, rebase
        the windows onto the far-future band, or flush the next due wheel
        slot.  Returns ``False`` only when every band is empty."""
        if self._num_bucketed:
            self._load_bucket()
            return True
        while self._cascade():
            # A cascaded slot can be all-cancelled; keep pulling until
            # level 0 has a live load or the upper levels run dry.
            if self._num_bucketed:
                self._load_bucket()
                return True
        overflow = self._overflow
        while overflow and overflow[0].cancelled:
            heapq.heappop(overflow)
            self._events_cancelled += 1
        if overflow:
            head_time = overflow[0].time
            if head_time < self._wheel_next_due:
                self._rebase(head_time)
                return True
            self._flush_wheel(self._wheel_next_due)
            return True
        if self._wheel_next_due is not _INF and self._wheel_heads:
            self._flush_wheel(self._wheel_next_due)
            return True
        return False

    def _slow_peek(self) -> Optional[Event]:
        """The next live event (leaving it queued), or ``None`` when empty.

        Normalizes state so ``self._cur[self._cur_idx]`` is that event:
        skips cancelled entries, flushes due wheel slots, loads/rotates
        buckets and migrates the overflow band as needed.
        """
        while True:
            cur = self._cur
            idx = self._cur_idx
            n = len(cur)
            blocked = False
            while idx < n:
                event = cur[idx]
                if event.cancelled:
                    idx += 1
                    self._events_cancelled += 1
                    continue
                if event.time >= self._wheel_next_due:
                    # Wheel timers may be due before this event: flush, then
                    # rescan (the flush can insort earlier events into _cur).
                    self._cur_idx = idx
                    self._flush_wheel(event.time)
                    blocked = True
                    break
                self._cur_idx = idx
                return event
            if blocked:
                continue
            self._cur_idx = n
            if not self._step_sources():
                return None

    # ------------------------------------------------------------------
    # Tombstone sweeping (memory bound, heap-compaction analog)
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        """Drop cancelled entries everywhere if they dominate.

        Triggered every ``watermark`` insertions; the watermark doubles with
        the surviving population so the O(n) walk is amortized O(1) per
        insertion, exactly like the heap core's compaction.
        """
        self._since_sweep = 0
        total = self.pending_events
        if total < _COMPACT_MIN_SIZE:
            self._sweep_watermark = _COMPACT_MIN_SIZE
            return
        dead = 0
        dead += sum(1 for e in self._cur[self._cur_idx:] if e.cancelled)
        for lst in self._buckets:
            dead += sum(1 for e in lst if e.cancelled)
        for lvl in range(1, self._num_levels):
            for lst in self._hi_buckets[lvl]:
                dead += sum(1 for e in lst if e.cancelled)
        dead += sum(1 for e in self._overflow if e.cancelled)
        for lst in self._wheel.values():
            dead += sum(1 for e in lst if e.cancelled)
        if 2 * (total - dead) > total:
            self._sweep_watermark = max(_COMPACT_MIN_SIZE, 2 * (total - dead))
            return
        # Rebuild every band without its tombstones.
        live_cur = [e for e in self._cur[self._cur_idx:] if not e.cancelled]
        self._cur = live_cur
        self._cur_idx = 0
        for slot in range(len(self._buckets)):
            lst = self._buckets[slot]
            if lst:
                self._buckets[slot] = [e for e in lst if not e.cancelled]
        self._num_bucketed = sum(len(lst) for lst in self._buckets)
        for lvl in range(1, self._num_levels):
            blist = self._hi_buckets[lvl]
            for slot in range(len(blist)):
                lst = blist[slot]
                if lst:
                    blist[slot] = [e for e in lst if not e.cancelled]
            self._hi_counts[lvl] = sum(len(lst) for lst in blist)
        live_overflow = [e for e in self._overflow if not e.cancelled]
        heapq.heapify(live_overflow)
        self._overflow = live_overflow
        for slot in list(self._wheel):
            lst = [e for e in self._wheel[slot] if not e.cancelled]
            if lst:
                self._wheel[slot] = lst
            else:
                del self._wheel[slot]
        self._wheel_count = sum(len(lst) for lst in self._wheel.values())
        self._wheel_heads = sorted(self._wheel)
        self._wheel_next_due = (
            self._wheel_heads[0] / self._inv_wheel if self._wheel_heads else _INF
        )
        self._events_cancelled += dead
        self._sweep_watermark = max(_COMPACT_MIN_SIZE, 2 * self.pending_events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return (
            len(self._cur)
            - self._cur_idx
            + self._num_bucketed
            + sum(self._hi_counts)
            + len(self._overflow)
            + self._wheel_count
        )

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self._stopped = False
        limit = _INF if until is None else until
        budget = max_events if max_events is not None else None
        trace = self._trace
        executed = 0
        try:
            while not self._stopped:
                # Fast path: the next entry of the sorted current bucket.
                cur = self._cur
                idx = self._cur_idx
                if idx < len(cur):
                    event = cur[idx]
                    time = event.time
                    if not event.cancelled and time < self._wheel_next_due:
                        if time > limit:
                            break
                        self._cur_idx = idx + 1
                        self.now = time
                        if trace is not None:
                            trace.append((time, event.seq))
                        event.fn(*event.args)
                        executed += 1
                        if budget is not None and executed >= budget:
                            break
                        continue
                    # Tombstone or a due wheel slot at the head.
                    if self._slow_peek() is None:
                        break
                    continue
                if self._num_bucketed:
                    # Medium path, inlined because it runs once per bucket
                    # (= once per event when buckets are sparse): pop the
                    # next occupied bucket off the heads heap.
                    buckets = self._buckets
                    mask = self._mask
                    heads = self._bucket_heads
                    win_lo = self._win_lo
                    lst = None
                    while heads:
                        i = heapq.heappop(heads)
                        if i <= win_lo:
                            continue  # stale head (see _step_sources)
                        lst = buckets[i & mask]
                        if lst:
                            break
                    if not lst:
                        raise RuntimeError(
                            "calendar-queue invariant violated: "
                            "bucketed events not found in window"
                        )
                    buckets[i & mask] = []
                    self._num_bucketed -= len(lst)
                    if len(lst) > 1:
                        lst.sort()
                    self._win_lo = i
                    self._cur = lst
                    self._cur_idx = 0
                    continue
                # Slow path: rotate the window onto the overflow band or
                # flush the next due wheel slot -- then retry the fast path.
                if self._slow_peek() is None:
                    break
        finally:
            self._events_processed += executed
        if until is not None and not self._stopped and self.now < until:
            head = self._slow_peek()
            if head is None or head.time > until:
                self.now = until


def compiled_event_class() -> Optional[type]:
    """The C ``CEvent`` type, or ``None`` when the extension is not built.

    Import is delegated to :mod:`repro.sim.compiled`, which caches the
    probe; this stays cheap enough to call from ``Simulator.__new__``.
    """
    from repro.sim import compiled

    if not compiled.available():
        return None
    return compiled.load().CEvent


class _CCalendarSimulator(_CalendarSimulator):
    """Calendar core running on the compiled ``CEvent`` type
    (``queue="calendar_c"``).

    Identical structure and event order to :class:`_CalendarSimulator`; only
    the per-event fixed costs (allocation, ``(time, seq)`` comparison in
    sorts/heaps) move to C.  Requires ``python -m repro.sim.compiled
    --build``; :class:`Simulator` falls back to the pure-Python calendar when
    the extension is absent, so ``calendar_c`` is always safe to request.
    """

    queue_kind = "calendar_c"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        event_cls = compiled_event_class()
        if event_cls is None:  # pragma: no cover - guarded by __new__
            raise RuntimeError(
                "compiled engine core requested but repro.sim._cevent is not "
                "built; run `python -m repro.sim.compiled --build`"
            )
        self._event_cls = event_cls


_QUEUE_IMPLS: dict[str, type] = {
    "heap": _HeapSimulator,
    "calendar": _CalendarSimulator,
    "calendar_c": _CCalendarSimulator,
}
