"""The discrete-event simulation engine.

The engine is a classic calendar-queue style event loop built on a binary
heap.  All other simulator components (links, switches, hosts, transports)
schedule callbacks on a shared :class:`Simulator` instance.  Time is kept in
seconds as a float; event ordering between equal timestamps is FIFO by
insertion order so runs are fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire in the
    order they were scheduled.  Cancelled events stay in the heap but are
    skipped when popped.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the head."""
        self.cancelled = True


class Simulator:
    """Event loop, simulation clock and random-number source.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  Every stochastic
        component (workload generation, ECN marking, ECMP tie-breaks) draws
        from this RNG so a run is reproducible from its seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (time={time}, now={self.now})"
            )
        event = Event(time=time, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of events that have been executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this time.  The clock
            is advanced to ``until`` when the queue empties earlier.
        max_events:
            Safety valve for tests: stop after executing this many events.
        """
        self._stopped = False
        executed = 0
        while self._heap and not self._stopped:
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            self._events_processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and not self._stopped and self.now < until:
            if not self._heap or self._heap[0].time > until:
                self.now = until

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Run until no events remain (or ``max_events`` were executed)."""
        self.run(until=None, max_events=max_events)
