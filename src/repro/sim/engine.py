"""The discrete-event simulation engine.

The engine is a classic calendar-queue style event loop built on a binary
heap.  All other simulator components (links, switches, hosts, transports)
schedule callbacks on a shared :class:`Simulator` instance.  Time is kept in
seconds as a float; event ordering between equal timestamps is FIFO by
insertion order so runs are fully deterministic for a given seed.

Cancelled events are *tombstones*: they stay in the heap and are discarded
when they reach the head.  Because the transports set and almost always
cancel one retransmission timer per data packet, tombstones can outnumber
live events; the simulator therefore compacts the heap in place whenever the
dead fraction grows past one half (amortized O(1) per event).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Optional

#: Heaps smaller than this are never compacted -- scanning them costs more
#: than letting the pop loop discard the tombstones.
_COMPACT_MIN_SIZE = 2048


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire in the
    order they were scheduled.  Cancelled events stay in the heap but are
    discarded, without running, when they reach the head.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple = ()) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}{state})"

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the head."""
        self.cancelled = True


class Simulator:
    """Event loop, simulation clock and random-number source.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  Every stochastic
        component (workload generation, ECN marking, ECMP tie-breaks) draws
        from this RNG so a run is reproducible from its seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._events_cancelled = 0
        self._stopped = False
        self._compact_watermark = _COMPACT_MIN_SIZE

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (time={time}, now={self.now})"
            )
        event = Event(time, next(self._seq), fn, args)
        heap = self._heap
        heapq.heappush(heap, event)
        if len(heap) >= self._compact_watermark:
            self._compact()
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is not None:
            event.cancelled = True

    def _compact(self) -> None:
        """Drop cancelled tombstones if they dominate the heap.

        Called whenever the heap grows past a watermark.  The watermark
        doubles with the surviving heap so the O(n) scan is amortized O(1)
        per scheduled event.
        """
        heap = self._heap
        live = [event for event in heap if not event.cancelled]
        if 2 * len(live) <= len(heap):
            self._events_cancelled += len(heap) - len(live)
            # Replace contents in place: ``run`` holds a reference to the
            # list, so the object identity must be preserved.
            heap[:] = live
            heapq.heapify(heap)
        self._compact_watermark = max(_COMPACT_MIN_SIZE, 2 * len(heap))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of events that have been executed so far."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of cancelled events discarded (popped or compacted away)."""
        return self._events_cancelled

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next *live* event would be later than this time; the
            head event stays queued, so a later ``run`` call resumes exactly
            where this one stopped.  On return the clock is advanced to
            ``until`` whenever the simulation did not already reach it *and*
            no live event at or before ``until`` remains queued (i.e. the
            queue emptied or only later events remain); :meth:`stop` always
            suppresses the advance, and the ``max_events`` valve does so only
            when it left live events at or before ``until`` unexecuted.
        max_events:
            Safety valve: stop once this many events have been *executed*.
            Cancelled events discarded from the heap never run and do not
            count against the valve; they are tallied separately in
            :attr:`events_cancelled`.  (Termination is still guaranteed:
            tombstones cannot schedule new events, so discarding them only
            shrinks the heap.)
        """
        self._stopped = False
        # Hot path: bind everything the loop touches to locals.  This loop
        # runs hundreds of thousands of times per simulated second, so each
        # avoided attribute/global lookup is measurable (see
        # benchmarks/perf_engine.py).
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        cancelled = 0
        try:
            while heap and not self._stopped:
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    cancelled += 1
                    continue
                time = event.time
                if until is not None and time > until:
                    break
                heappop(heap)
                self.now = time
                event.fn(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._events_processed += executed
            self._events_cancelled += cancelled
        if until is not None and not self._stopped and self.now < until:
            # Discard tombstones so the advance decision sees the live head.
            while heap and heap[0].cancelled:
                heappop(heap)
                self._events_cancelled += 1
            if not heap or heap[0].time > until:
                self.now = until

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Run until no events remain (or ``max_events`` were executed)."""
        self.run(until=None, max_events=max_events)
