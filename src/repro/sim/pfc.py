"""Priority Flow Control (PFC) primitives.

PFC (IEEE 802.1Qbb) is a hop-by-hop, per-priority pause mechanism: when an
input queue exceeds a configured threshold the switch sends an X-OFF frame to
the upstream entity, which stops transmitting on that priority until an X-ON
frame is received.  The paper configures the pause threshold as the per-port
buffer size minus a headroom equal to one bandwidth-delay product of the
upstream link, so packets already in flight can be absorbed without loss.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PfcConfig:
    """PFC configuration for one switch (single priority class).

    Attributes
    ----------
    enabled:
        When ``False`` the switch never pauses and drops packets on buffer
        overflow instead (the "lossy" fabric IRN targets).
    headroom_bytes:
        Buffer reserved above the pause threshold to absorb in-flight packets
        from the upstream link.
    """

    enabled: bool = True
    headroom_bytes: int = 20_000

    def pause_threshold(self, buffer_bytes: int) -> int:
        """Occupancy at which an X-OFF frame is generated."""
        return max(0, buffer_bytes - self.headroom_bytes)

    def resume_threshold(self, buffer_bytes: int) -> int:
        """Occupancy below which an X-ON frame is generated."""
        return self.pause_threshold(buffer_bytes)


def headroom_for_link(
    bandwidth_bps: float,
    prop_delay_s: float,
    mtu_bytes: int = 1000,
    port_batch_bytes: int | None = None,
) -> int:
    """Compute the PFC headroom needed to absorb a link's in-flight bytes.

    The headroom must cover one propagation delay of data at line rate in each
    direction (the time for the pause to reach the sender plus the data already
    on the wire), the departure batch the upstream port had already committed
    to its MAC when the threshold was crossed (``DEFAULT_PORT_BATCH`` packets,
    see :mod:`repro.sim.link`), the batch that starts just before the pause
    frame arrives, and the pause frame's own serialization time.

    ``port_batch_bytes`` is the optional bytes-based batch cap
    (:attr:`~repro.experiments.config.ExperimentConfig.port_batch_bytes`):
    when it bounds a batch tighter than the packet count does, the budget
    shrinks with it -- a capped batch commits at most ``port_batch_bytes``
    plus one straddling MTU.
    """
    from repro.sim.link import DEFAULT_PORT_BATCH

    batch_bytes = DEFAULT_PORT_BATCH * mtu_bytes
    if port_batch_bytes is not None:
        batch_bytes = min(batch_bytes, port_batch_bytes + mtu_bytes)
    in_flight = 2.0 * bandwidth_bps * prop_delay_s / 8.0
    return int(in_flight + 2 * batch_bytes + mtu_bytes + 64)


class PfcState:
    """Tracks pause state and statistics for one input port."""

    def __init__(self) -> None:
        self.upstream_paused = False
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0

    def should_pause(self, occupancy: int, threshold: int) -> bool:
        """True when an X-OFF frame must be sent for the current occupancy."""
        return not self.upstream_paused and occupancy >= threshold

    def should_resume(self, occupancy: int, threshold: int) -> bool:
        """True when an X-ON frame must be sent for the current occupancy."""
        return self.upstream_paused and occupancy < threshold

    def mark_paused(self) -> None:
        self.upstream_paused = True
        self.pause_frames_sent += 1

    def mark_resumed(self) -> None:
        self.upstream_paused = False
        self.resume_frames_sent += 1
