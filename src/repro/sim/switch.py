"""Input-queued switches with virtual output queues, PFC and ECN marking.

The paper's simulator models "input-queued switches with virtual output
ports, scheduled using round-robin", with per-input-port buffers whose
occupancy drives PFC pause/resume.  This module reproduces that model:

* every incoming link owns an input port with a fixed buffer,
* each input port keeps one virtual output queue (VOQ) per output port,
* each output port serves its VOQs round-robin across input ports,
* when PFC is enabled an input port that crosses its pause threshold sends an
  X-OFF frame to the upstream node; when it drains it sends X-ON,
* when PFC is disabled packets that do not fit in the buffer are dropped,
* ECN marking (RED-style for DCQCN, step marking for DCTCP) is applied based
  on the per-output queue depth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.sim.link import Link, OutputPort
from repro.sim.packet import Packet, PacketType
from repro.sim.pfc import PfcConfig, PfcState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.routing import Routing


@dataclass
class EcnConfig:
    """ECN marking configuration (RED-like, per DCQCN's recommended setup)."""

    enabled: bool = False
    kmin_bytes: int = 20_000
    kmax_bytes: int = 80_000
    pmax: float = 0.2
    #: When True, mark deterministically above ``kmin_bytes`` (DCTCP-style).
    step_marking: bool = False


@dataclass
class SwitchConfig:
    """Per-switch configuration.

    ``buffer_bytes_per_port`` is the per-input-port buffer (the paper sizes it
    at twice the network BDP, 240KB in the default scenario).
    """

    buffer_bytes_per_port: int = 240_000
    pfc: PfcConfig = field(default_factory=PfcConfig)
    ecn: EcnConfig = field(default_factory=EcnConfig)


class _InputPort:
    """Buffer and VOQs for one incoming link."""

    def __init__(self, link: Link, buffer_bytes: int, pfc_config: PfcConfig) -> None:
        self.link = link
        self.buffer_bytes = buffer_bytes
        self.occupancy = 0
        self.voqs: Dict[OutputPort, Deque[Packet]] = {}
        self.pfc = PfcState()
        # Thresholds are pure functions of the (fixed) buffer size; computed
        # once here instead of per received packet.
        self.pause_threshold = pfc_config.pause_threshold(buffer_bytes)
        self.resume_threshold = pfc_config.resume_threshold(buffer_bytes)

    def voq(self, port: OutputPort) -> Deque[Packet]:
        queue = self.voqs.get(port)
        if queue is None:
            queue = deque()
            self.voqs[port] = queue
        return queue


class Switch:
    """An input-queued switch."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        config: Optional[SwitchConfig] = None,
        routing: Optional["Routing"] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config or SwitchConfig()
        self.routing = routing

        self.output_ports: Dict[str, OutputPort] = {}   # neighbor name -> port
        self.input_ports: Dict[Link, _InputPort] = {}   # incoming link -> input port
        self._in_port_list: List[_InputPort] = []       # stable scan order for RR
        self._rr_pointer: Dict[OutputPort, int] = {}    # round-robin state
        self._out_queue_bytes: Dict[OutputPort, int] = {}

        # Statistics
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.bytes_dropped = 0
        self.packets_marked = 0
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0
        #: Optional observability probe (duck-typed ``.add(bytes)``): when
        #: attached (``ExperimentConfig.fabric_digests``), the enqueueing
        #: input port's buffer occupancy is sampled after every accepted
        #: packet -- the §4.4 congestion-spreading queue-depth distribution.
        self.queue_depth_digest = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_output_link(self, link: Link) -> OutputPort:
        """Attach an outgoing link; returns the created output port."""
        port = OutputPort(self.sim, link, source=self)
        self.output_ports[link.dst.name] = port
        self._rr_pointer[port] = 0
        self._out_queue_bytes[port] = 0
        return port

    def add_input_link(self, link: Link) -> None:
        """Register an incoming link (creates its input-port buffer)."""
        in_port = _InputPort(link, self.config.buffer_bytes_per_port, self.config.pfc)
        self.input_ports[link] = in_port
        self._in_port_list.append(in_port)

    def port_towards(self, neighbor_name: str) -> OutputPort:
        """The output port facing ``neighbor_name``."""
        return self.output_ports[neighbor_name]

    def neighbors(self) -> List[str]:
        """Names of nodes reachable over one of this switch's output links."""
        return list(self.output_ports.keys())

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Link) -> None:
        """Handle a frame arriving on ``link``."""
        if packet.is_pfc():
            self._handle_pfc(packet, link)
            return

        in_port = self.input_ports.get(link)
        if in_port is None:
            raise RuntimeError(f"{self.name}: packet arrived on unregistered link {link.name}")

        next_hop = self._next_hop(packet)
        out_port = self.output_ports.get(next_hop)
        if out_port is None:
            raise RuntimeError(f"{self.name}: no port towards {next_hop} for {packet}")

        if in_port.occupancy + packet.size_bytes > in_port.buffer_bytes:
            # Buffer overrun.  With correctly-configured PFC this should not
            # happen; without PFC this is a normal congestion drop.
            self.packets_dropped += 1
            self.bytes_dropped += packet.size_bytes
            return

        if self.config.ecn.enabled:
            self._maybe_mark_ecn(packet, out_port)

        in_port.voq(out_port).append(packet)
        in_port.occupancy += packet.size_bytes
        self._out_queue_bytes[out_port] += packet.size_bytes

        if self.queue_depth_digest is not None:
            self.queue_depth_digest.add(in_port.occupancy)

        if self.config.pfc.enabled:
            if in_port.pfc.should_pause(in_port.occupancy, in_port.pause_threshold):
                in_port.pfc.mark_paused()
                self.pause_frames_sent += 1
                self._send_pfc(link, PacketType.PFC_PAUSE)

        out_port.kick()

    # ------------------------------------------------------------------
    # Transmit path (PacketSource protocol)
    # ------------------------------------------------------------------
    def next_packet(self, port: OutputPort) -> Optional[Packet]:
        """Round-robin over input ports with traffic queued for ``port``."""
        if not self._out_queue_bytes[port]:
            # Nothing queued for this output anywhere: O(1) miss.  Departure
            # batching probes until the source runs dry, so misses are as
            # frequent as batches and must not scan every input port.
            return None
        in_ports = self._in_port_list
        if not in_ports:
            return None
        start = self._rr_pointer.get(port, 0) % len(in_ports)
        for offset in range(len(in_ports)):
            idx = (start + offset) % len(in_ports)
            in_port = in_ports[idx]
            queue = in_port.voqs.get(port)
            if queue:
                packet = queue.popleft()
                in_port.occupancy -= packet.size_bytes
                self._out_queue_bytes[port] -= packet.size_bytes
                self._rr_pointer[port] = idx + 1
                self.packets_forwarded += 1
                self._maybe_resume(in_port)
                return packet
        return None

    def queued_bytes_for_output(self, port: OutputPort) -> int:
        """Bytes currently queued (across all inputs) for ``port``."""
        return self._out_queue_bytes.get(port, 0)

    def total_queued_bytes(self) -> int:
        """Bytes currently buffered in the switch."""
        return sum(p.occupancy for p in self.input_ports.values())

    def total_queued_packets(self) -> int:
        """Packets currently buffered in the switch (all VOQs).

        Used by the verify harness's conservation invariant: at drain,
        injected == delivered + dropped + still-queued, fabric-wide.
        """
        return sum(
            len(queue)
            for in_port in self.input_ports.values()
            for queue in in_port.voqs.values()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_hop(self, packet: Packet) -> str:
        if self.routing is None:
            raise RuntimeError(f"{self.name}: no routing configured")
        return self.routing.next_hop(self, packet)

    def _maybe_mark_ecn(self, packet: Packet, out_port: OutputPort) -> None:
        ecn = self.config.ecn
        if packet.ptype is not PacketType.DATA:
            return
        depth = self._out_queue_bytes[out_port]
        if ecn.step_marking:
            if depth >= ecn.kmin_bytes:
                packet.ecn = True
                self.packets_marked += 1
            return
        if depth <= ecn.kmin_bytes:
            return
        if depth >= ecn.kmax_bytes:
            probability = 1.0
        else:
            span = max(1, ecn.kmax_bytes - ecn.kmin_bytes)
            probability = ecn.pmax * (depth - ecn.kmin_bytes) / span
        if self.sim.rng.random() < probability:
            packet.ecn = True
            self.packets_marked += 1

    def _maybe_resume(self, in_port: _InputPort) -> None:
        if not self.config.pfc.enabled:
            return
        if in_port.pfc.should_resume(in_port.occupancy, in_port.resume_threshold):
            in_port.pfc.mark_resumed()
            self.resume_frames_sent += 1
            self._send_pfc(in_port.link, PacketType.PFC_RESUME)

    def _send_pfc(self, congested_link: Link, ptype: PacketType) -> None:
        """Send a pause/resume frame to the node feeding ``congested_link``."""
        upstream_name = congested_link.src.name
        reverse_port = self.output_ports.get(upstream_name)
        frame = Packet(
            ptype=ptype,
            flow_id=-1,
            src=self.name,
            dst=upstream_name,
        )
        if reverse_port is not None:
            reverse_port.send_control_direct(frame)
        else:  # pragma: no cover - defensive: no reverse link (one-way wiring)
            self.sim.schedule(congested_link.prop_delay_s, congested_link.src.receive, frame, congested_link)

    def _handle_pfc(self, packet: Packet, link: Link) -> None:
        """Pause or resume our output port facing the pause frame's sender."""
        sender = link.src.name
        port = self.output_ports.get(sender)
        if port is None:  # pragma: no cover - defensive
            return
        if packet.ptype is PacketType.PFC_PAUSE:
            port.pause()
        else:
            port.resume()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name})"
