"""Links and output ports.

A :class:`Link` is a unidirectional channel between two nodes with a fixed
bandwidth and propagation delay.  The sending side of a link is driven by an
:class:`OutputPort`, which serializes packets, honours PFC pause state, and
pulls packets from its owning node (a switch output scheduler or a host NIC)
whenever the wire goes idle.

Departures are *batched*: when the wire is idle and the source has
back-to-back packets ready, the port commits up to
:data:`DEFAULT_PORT_BATCH` of them in one pull, schedules each arrival
directly at its exact serialization-completion-plus-propagation time, and
arranges at most **one** wake-up event per busy period instead of one
schedule->fire->pull chain per packet.  Committed packets model frames
already handed to the MAC FIFO: a PFC pause arriving mid-batch takes effect
at the next pull (the PFC headroom accounts for this burst, see
:func:`repro.sim.pfc.headroom_for_link`).  Arrival times *and* per-packet
send timestamps (``Packet.sent_time`` is re-stamped at each packet's
serialization start, keeping RTT samples exact) are identical to the
unbatched model; only the pull *decision points* are coarser.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Event, Simulator

#: Maximum packets an :class:`OutputPort` commits to the wire per pull.  The
#: PFC headroom budget (:func:`repro.sim.pfc.headroom_for_link`) absorbs one
#: full batch in flight after a pause frame lands, so these two constants
#: move together.
DEFAULT_PORT_BATCH = 4


class PacketSource(Protocol):
    """Anything an :class:`OutputPort` can pull packets from."""

    def next_packet(self, port: "OutputPort") -> Optional[Packet]:
        """Return the next packet to send on ``port`` or ``None`` if idle."""


class Node(Protocol):
    """Minimal interface all network nodes implement."""

    name: str

    def receive(self, packet: Packet, link: "Link") -> None:
        """Handle a packet arriving over ``link``."""


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Parameters
    ----------
    bandwidth_bps:
        Link rate in bits per second.
    prop_delay_s:
        One-way propagation delay in seconds.
    """

    def __init__(
        self,
        sim: "Simulator",
        src: Node,
        dst: Node,
        bandwidth_bps: float,
        prop_delay_s: float,
        name: Optional[str] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if prop_delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay_s = prop_delay_s
        self.name = name or f"{src.name}->{dst.name}"

        # Statistics
        self.bytes_sent = 0
        self.packets_sent = 0
        self.busy_time = 0.0

    def serialization_delay(self, packet: Packet) -> float:
        """Time to clock ``packet`` onto the wire at the link rate."""
        return packet.size_bits / self.bandwidth_bps

    def deliver(self, packet: Packet, extra_delay: float = 0.0) -> None:
        """Schedule arrival of ``packet`` at the far end of the link."""
        self.sim.schedule(self.prop_delay_s + extra_delay, self.dst.receive, packet, self)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this link spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.bandwidth_bps/1e9:.0f}Gbps)"


class OutputPort:
    """The transmit side of a link.

    The port pulls packets from its ``source`` whenever the wire is free and
    the port is not paused by PFC.  Serialization is modelled explicitly: a
    packet occupies the wire for ``size_bits / bandwidth`` seconds and then
    propagates for the link delay before arriving at the peer.

    One pull commits up to ``max_batch_packets`` back-to-back packets (the
    departure batch); the port tracks when the wire frees (``_free_at``) and
    schedules a wake-up pull only when one is actually needed -- when the
    batch limit cut the pull short, or when a kick arrives while the wire is
    busy.  An idle-source busy period therefore costs zero wake-up events.

    ``max_batch_bytes`` optionally caps the *bytes* one pull commits: the
    batch stops once the committed bytes reach the cap (it always commits at
    least one packet, so a jumbo frame larger than the cap still moves).
    The worst-case burst past a PFC pause is therefore ``max_batch_bytes``
    plus one straddling packet, instead of ``max_batch_packets`` full MTUs
    -- the knob jumbo-MTU configs set via
    :attr:`~repro.experiments.config.ExperimentConfig.port_batch_bytes`.
    """

    def __init__(
        self,
        sim: "Simulator",
        link: Link,
        source: PacketSource,
        max_batch_packets: int = DEFAULT_PORT_BATCH,
        max_batch_bytes: Optional[int] = None,
    ) -> None:
        if max_batch_packets < 1:
            raise ValueError("max_batch_packets must be >= 1")
        if max_batch_bytes is not None and max_batch_bytes < 1:
            raise ValueError("max_batch_bytes must be >= 1")
        self.sim = sim
        self.link = link
        self.source = source
        self.max_batch_packets = max_batch_packets
        self.max_batch_bytes = max_batch_bytes
        self.paused = False

        self._free_at = 0.0
        self._pull_event: Optional["Event"] = None

        # Statistics
        self.pause_count = 0
        self.resume_count = 0
        self.paused_time = 0.0
        self._paused_since: Optional[float] = None
        #: Pulls that committed at least one packet (batches).
        self.batches_sent = 0
        #: Optional observability probe (duck-typed ``.add(duration)``):
        #: when attached (``ExperimentConfig.fabric_digests``), every PFC
        #: pause episode's duration is recorded at resume time.
        self.pause_digest = None
        #: Optional pause-state observer (duck-typed ``.on_pause(port)`` /
        #: ``.on_resume(port)``), called on every False->True / True->False
        #: transition.  Pure observation -- the PFC deadlock detector hangs
        #: its wait-for graph off this hook without adding events.
        self.pause_observer = None

    @property
    def busy(self) -> bool:
        """True while a committed departure batch still occupies the wire."""
        return self.sim.now < self._free_at

    # ------------------------------------------------------------------
    # PFC pause handling
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop pulling new packets (committed packets complete)."""
        if not self.paused:
            self.paused = True
            self.pause_count += 1
            self._paused_since = self.sim.now
            if self.pause_observer is not None:
                self.pause_observer.on_pause(self)

    def resume(self) -> None:
        """Resume transmission and immediately try to send."""
        if self.paused:
            self.paused = False
            self.resume_count += 1
            if self._paused_since is not None:
                duration = self.sim.now - self._paused_since
                self.paused_time += duration
                if self.pause_digest is not None:
                    self.pause_digest.add(duration)
                self._paused_since = None
            if self.pause_observer is not None:
                self.pause_observer.on_resume(self)
            self.kick()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Try to start transmitting; defer to a wake-up if the wire is busy."""
        if self.paused:
            return
        now = self.sim.now
        if now < self._free_at:
            # Wire busy: remember (at most once) to pull when it frees.
            if self._pull_event is None:
                self._pull_event = self.sim.schedule_at(self._free_at, self._pull)
            return
        self._start_batch(now)

    def _pull(self) -> None:
        self._pull_event = None
        if self.paused:
            return
        now = self.sim.now
        if now < self._free_at:
            # A kick at this exact timestamp (but scheduled earlier) already
            # started a new batch before this wake-up fired: the wire is
            # committed again.  Re-arm for the new free time instead of
            # double-committing the wire, which would interleave two batches
            # and reorder the flow.
            self._pull_event = self.sim.schedule_at(self._free_at, self._pull)
            return
        self._start_batch(now)

    def _start_batch(self, now: float) -> None:
        """Commit up to ``max_batch_packets`` departures starting at ``now``."""
        link = self.link
        sim = self.sim
        next_packet = self.source.next_packet
        receive = link.dst.receive
        prop = link.prop_delay_s
        bandwidth = link.bandwidth_bps
        free_at = now
        count = 0
        committed_bytes = 0
        limit = self.max_batch_packets
        byte_cap = self.max_batch_bytes
        limited = False
        while True:
            if count >= limit or (byte_cap is not None and committed_bytes >= byte_cap):
                # A limit (not an empty source) is ending this pull.
                limited = True
                break
            packet = next_packet(self)
            if packet is None:
                break
            # Re-stamp the send time at this packet's serialization start:
            # transports build batch members at the pull timestamp, but RTT
            # consumers (Timely, iWARP's adaptive RTO) must see the same
            # wire-start times the unbatched model produced.
            packet.sent_time = free_at
            delay = packet.size_bits / bandwidth
            link.busy_time += delay
            link.bytes_sent += packet.size_bytes
            link.packets_sent += 1
            free_at += delay
            # The arrival time is fixed the moment serialization is
            # committed, so schedule it directly -- no per-packet
            # transmit-done event.
            sim.schedule_at(free_at + prop, receive, packet, link)
            count += 1
            committed_bytes += packet.size_bytes
        if count:
            self.batches_sent += 1
            self._free_at = free_at
            if limited:
                # The batch limit (not an empty source) ended the pull, so
                # nothing will kick us: arrange the next pull ourselves.
                if self._pull_event is None:
                    self._pull_event = sim.schedule_at(free_at, self._pull)

    def send_control_direct(self, packet: Packet) -> None:
        """Send a control frame bypassing the data queue (used for PFC).

        PFC pause/resume frames are generated by the MAC layer and are not
        subject to the pause state of the data traffic; they are modelled as
        arriving after the propagation delay plus their own serialization
        time, without queueing behind data packets.
        """
        delay = self.link.serialization_delay(packet)
        self.link.deliver(packet, extra_delay=delay)
