"""Discrete-event, packet-level network simulation substrate.

This package models the pieces the paper's evaluation platform (an
OMNET++/INET based RoCE simulator) provides: an event engine, links with
serialization and propagation delay, input-queued switches with virtual
output queues and round-robin scheduling, Priority Flow Control (PFC),
ECN marking, ECMP routing and host NICs that schedule queue pairs.
"""

from repro.sim.deadlock import PfcDeadlockDetector
from repro.sim.engine import Simulator, Event
from repro.sim.packet import Packet, PacketType
from repro.sim.link import Link, OutputPort
from repro.sim.switch import Switch, SwitchConfig
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.routing import EcmpRouting, PacketSprayRouting

__all__ = [
    "PfcDeadlockDetector",
    "Simulator",
    "Event",
    "Packet",
    "PacketType",
    "Link",
    "OutputPort",
    "Switch",
    "SwitchConfig",
    "Host",
    "Network",
    "EcmpRouting",
    "PacketSprayRouting",
]
