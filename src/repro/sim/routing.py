"""Routing strategies.

The paper load-balances with ECMP, which hashes a flow onto one of the
equal-cost shortest paths and therefore preserves packet ordering within a
flow.  IRN's out-of-order support also enables per-packet load balancing
(packet spraying), which we provide for the reordering-robustness ablation.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Mapping, Protocol, Set

from repro.sim.packet import Packet


def stable_hash(*parts: object) -> int:
    """A process-independent hash (CRC32) used for ECMP path selection.

    Python's builtin ``hash`` is randomized per interpreter process, which
    would make simulation results irreproducible across runs; ECMP hardware
    hashes are deterministic, so the simulator's must be too.
    """
    return zlib.crc32("|".join(str(part) for part in parts).encode())

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.switch import Switch


class Routing(Protocol):
    """Strategy that picks the next hop for a packet at a switch."""

    def next_hop(self, node: "Switch", packet: Packet) -> str:
        """Name of the neighbor the packet should be forwarded to."""


def compute_next_hop_table(
    adjacency: Mapping[str, Set[str]],
    destinations: List[str],
) -> Dict[str, Dict[str, List[str]]]:
    """Compute per-node equal-cost next hops toward each destination.

    Runs a BFS rooted at every destination over the (undirected) adjacency
    graph and records, for every node, the neighbors that lie on a shortest
    path to that destination.

    Returns
    -------
    dict
        ``table[node][destination] -> sorted list of next-hop names``.
    """
    table: Dict[str, Dict[str, List[str]]] = {name: {} for name in adjacency}
    for dst in destinations:
        if dst not in adjacency:
            raise KeyError(f"destination {dst!r} is not in the topology")
        dist: Dict[str, int] = {dst: 0}
        frontier = deque([dst])
        while frontier:
            current = frontier.popleft()
            for neighbor in adjacency[current]:
                if neighbor not in dist:
                    dist[neighbor] = dist[current] + 1
                    frontier.append(neighbor)
        for node, neighbors in adjacency.items():
            if node == dst:
                continue
            if node not in dist:
                continue
            hops = sorted(n for n in neighbors if dist.get(n, float("inf")) == dist[node] - 1)
            if hops:
                table[node][dst] = hops
    return table


class EcmpRouting:
    """Equal-cost multi-path routing with per-flow hashing.

    A flow always takes the same path (the hash combines the flow id and the
    switch name), which matches how datacenter ECMP keys on the five-tuple.
    """

    def __init__(self, next_hops: Dict[str, Dict[str, List[str]]]) -> None:
        self._next_hops = next_hops
        # ECMP is a pure function of (switch, destination, flow); memoize it
        # so the per-packet cost is one dict probe instead of a CRC32 hash.
        self._hop_cache: Dict[tuple, str] = {}

    def candidates(self, node_name: str, dst: str) -> List[str]:
        """All equal-cost next hops from ``node_name`` toward ``dst``."""
        try:
            return self._next_hops[node_name][dst]
        except KeyError as exc:
            raise KeyError(f"no route from {node_name} to {dst}") from exc

    def next_hop(self, node: "Switch", packet: Packet) -> str:
        key = (node.name, packet.dst, packet.flow_id)
        hop = self._hop_cache.get(key)
        if hop is None:
            options = self.candidates(node.name, packet.dst)
            if len(options) == 1:
                hop = options[0]
            else:
                hop = options[stable_hash(packet.flow_id, node.name) % len(options)]
            self._hop_cache[key] = hop
        return hop

    def path(self, src: str, dst: str, flow_id: int) -> List[str]:
        """The sequence of node names a flow's packets traverse (src..dst)."""
        path = [src]
        current = src
        guard = 0
        while current != dst:
            options = self.candidates(current, dst)
            if len(options) == 1:
                current = options[0]
            else:
                current = options[stable_hash(flow_id, current) % len(options)]
            path.append(current)
            guard += 1
            if guard > 64:
                raise RuntimeError(f"routing loop from {src} to {dst}")
        return path

    def hop_count(self, src: str, dst: str, flow_id: int = 0) -> int:
        """Number of links between ``src`` and ``dst`` for this flow."""
        return len(self.path(src, dst, flow_id)) - 1


class PacketSprayRouting(EcmpRouting):
    """Per-packet load balancing (DRILL/packet spraying style).

    Each packet independently picks one of the equal-cost next hops, which
    maximizes path diversity but reorders packets within a flow.  Only
    transports that tolerate out-of-order delivery (IRN, iWARP) can use it.
    """

    def next_hop(self, node: "Switch", packet: Packet) -> str:
        options = self.candidates(node.name, packet.dst)
        if len(options) == 1:
            return options[0]
        index = stable_hash(packet.uid, node.name) % len(options)
        return options[index]
