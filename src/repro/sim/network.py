"""Network assembly: nodes, bidirectional links and routing tables.

:class:`Network` is the container that owns every host, switch and link of a
simulated fabric, wires ports on both ends of each connection and derives the
ECMP routing tables from the resulting adjacency graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.routing import EcmpRouting, PacketSprayRouting, compute_next_hop_table
from repro.sim.switch import Switch, SwitchConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class Network:
    """A collection of hosts, switches and the links between them."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: List[Link] = []
        self._adjacency: Dict[str, Set[str]] = {}
        self._link_params: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self.routing: Optional[EcmpRouting] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        """Create and register a host."""
        if name in self._adjacency:
            raise ValueError(f"duplicate node name {name!r}")
        host = Host(self.sim, name)
        self.hosts[name] = host
        self._adjacency[name] = set()
        return host

    def add_switch(self, name: str, config: Optional[SwitchConfig] = None) -> Switch:
        """Create and register a switch."""
        if name in self._adjacency:
            raise ValueError(f"duplicate node name {name!r}")
        switch = Switch(self.sim, name, config=config)
        self.switches[name] = switch
        self._adjacency[name] = set()
        return switch

    def node(self, name: str):
        """Look up a host or switch by name."""
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise KeyError(f"unknown node {name!r}")

    def connect(
        self,
        a_name: str,
        b_name: str,
        bandwidth_bps: float,
        prop_delay_s: float,
    ) -> Tuple[Link, Link]:
        """Create a full-duplex connection between two nodes.

        Two unidirectional :class:`Link` objects are created and the
        corresponding output/input ports are registered on both endpoints.
        """
        node_a = self.node(a_name)
        node_b = self.node(b_name)
        link_ab = Link(self.sim, node_a, node_b, bandwidth_bps, prop_delay_s)
        link_ba = Link(self.sim, node_b, node_a, bandwidth_bps, prop_delay_s)
        self.links.extend([link_ab, link_ba])
        self._attach(node_a, link_ab, outgoing=True)
        self._attach(node_b, link_ab, outgoing=False)
        self._attach(node_b, link_ba, outgoing=True)
        self._attach(node_a, link_ba, outgoing=False)
        self._adjacency[a_name].add(b_name)
        self._adjacency[b_name].add(a_name)
        self._link_params[(a_name, b_name)] = (bandwidth_bps, prop_delay_s)
        self._link_params[(b_name, a_name)] = (bandwidth_bps, prop_delay_s)
        return link_ab, link_ba

    @staticmethod
    def _attach(node, link: Link, outgoing: bool) -> None:
        if isinstance(node, Switch):
            if outgoing:
                node.add_output_link(link)
            else:
                node.add_input_link(link)
        elif isinstance(node, Host):
            if outgoing:
                node.set_uplink(link)
            else:
                node.add_input_link(link)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported node type {type(node)!r}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def build_routing(self, packet_spray: bool = False) -> EcmpRouting:
        """Compute ECMP next-hop tables toward every host and install them."""
        table = compute_next_hop_table(self._adjacency, list(self.hosts.keys()))
        routing = PacketSprayRouting(table) if packet_spray else EcmpRouting(table)
        self.routing = routing
        for switch in self.switches.values():
            switch.routing = routing
        return routing

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> Dict[str, Set[str]]:
        """Undirected adjacency map of the topology."""
        return self._adjacency

    def link_between(self, a_name: str, b_name: str) -> Link:
        """The unidirectional link from ``a_name`` to ``b_name``."""
        for link in self.links:
            if link.src.name == a_name and link.dst.name == b_name:
                return link
        raise KeyError(f"no link from {a_name} to {b_name}")

    def link_params(self, a_name: str, b_name: str) -> Tuple[float, float]:
        """(bandwidth, propagation delay) of the connection ``a -> b``."""
        return self._link_params[(a_name, b_name)]

    def set_link_delay(self, a_name: str, b_name: str, prop_delay_s: float) -> None:
        """Override the propagation delay of the directed link ``a -> b``,
        keeping :meth:`link_params` / :meth:`path_properties` consistent.
        Call before the simulation starts: packets already in flight keep
        the delay they departed with."""
        if prop_delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        link = self.link_between(a_name, b_name)
        link.prop_delay_s = prop_delay_s
        bandwidth, _ = self._link_params[(a_name, b_name)]
        self._link_params[(a_name, b_name)] = (bandwidth, prop_delay_s)

    def path_properties(self, src: str, dst: str, flow_id: int = 0) -> Tuple[int, float, float]:
        """Hop count, minimum bandwidth and total propagation delay of a path."""
        if self.routing is None:
            raise RuntimeError("routing has not been built yet")
        path = self.routing.path(src, dst, flow_id)
        min_bw = float("inf")
        total_delay = 0.0
        for a, b in zip(path, path[1:]):
            bandwidth, delay = self._link_params[(a, b)]
            min_bw = min(min_bw, bandwidth)
            total_delay += delay
        return len(path) - 1, min_bw, total_delay

    def output_ports(self):
        """Every :class:`~repro.sim.link.OutputPort` in the fabric (switch
        ports first, then host NIC uplinks), for fabric-wide port knobs and
        observability probes."""
        for switch in self.switches.values():
            yield from switch.output_ports.values()
        for host in self.hosts.values():
            if host.uplink_port is not None:
                yield host.uplink_port

    def set_port_batch_bytes(self, max_batch_bytes: Optional[int]) -> None:
        """Apply a bytes-based departure-batch cap to every output port
        (switch ports *and* host NICs -- hosts source the bursts PFC has to
        absorb).  Call before the simulation starts."""
        if max_batch_bytes is not None and max_batch_bytes < 1:
            # Same guard as the OutputPort constructor: a zero cap would
            # silently stop every port from ever pulling a packet.
            raise ValueError("max_batch_bytes must be >= 1 (or None to disable)")
        for port in self.output_ports():
            port.max_batch_bytes = max_batch_bytes

    def total_dropped_packets(self) -> int:
        """Total packets dropped by all switches so far."""
        return sum(s.packets_dropped for s in self.switches.values())

    def total_pause_frames(self) -> int:
        """Total PFC pause frames generated by all switches so far."""
        return sum(s.pause_frames_sent for s in self.switches.values())

    def total_forwarded_packets(self) -> int:
        """Total packets forwarded by all switches so far."""
        return sum(s.packets_forwarded for s in self.switches.values())

    def total_queued_packets(self) -> int:
        """Packets currently buffered across every switch VOQ.

        The in-flight term of the conservation invariant checked by
        ``repro.verify``: at drain, everything hosts committed to the wire is
        either delivered, dropped, or still sitting in one of these queues.
        """
        return sum(s.total_queued_packets() for s in self.switches.values())
