/* C-accelerated scheduler event for the simulation engine.
 *
 * A drop-in replacement for ``repro.sim.engine.Event``: same constructor
 * signature ``(time, seq, fn, args=())``, same attributes, same ``cancel()``
 * method, and the same strict ``(time, seq)`` ordering.  The win comes from
 * C-level allocation (no Python ``__init__`` frame per scheduled event) and
 * a C richcompare, which ``list.sort``/``heapq``/``insort`` hit once or more
 * per event.  Ordering is bit-identical to the Python class, so the
 * cross-core determinism pins hold for the compiled core too.
 *
 * Built on demand by ``repro.sim.compiled`` (no build system, one gcc
 * invocation); the engine falls back to the pure-Python Event when the
 * extension has not been built.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *fn;
    PyObject *args;
    int cancelled;
} CEvent;

static PyTypeObject CEventType;

static PyObject *
cevent_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    double time;
    long long seq;
    PyObject *fn;
    PyObject *cargs = NULL;
    static char *kwlist[] = {"time", "seq", "fn", "args", NULL};

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "dLO|O:CEvent", kwlist,
                                     &time, &seq, &fn, &cargs))
        return NULL;

    CEvent *self = (CEvent *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->time = time;
    self->seq = seq;
    Py_INCREF(fn);
    self->fn = fn;
    if (cargs == NULL) {
        self->args = PyTuple_New(0);
        if (self->args == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    else {
        Py_INCREF(cargs);
        self->args = cargs;
    }
    self->cancelled = 0;
    return (PyObject *)self;
}

static int
cevent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    return 0;
}

static int
cevent_clear(CEvent *self)
{
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    return 0;
}

static void
cevent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    cevent_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
cevent_richcompare(PyObject *a, PyObject *b, int op)
{
    if (!PyObject_TypeCheck(a, &CEventType) || !PyObject_TypeCheck(b, &CEventType))
        Py_RETURN_NOTIMPLEMENTED;
    CEvent *x = (CEvent *)a;
    CEvent *y = (CEvent *)b;
    int cmp;  /* -1, 0, 1 on the (time, seq) key */
    if (x->time < y->time)
        cmp = -1;
    else if (x->time > y->time)
        cmp = 1;
    else if (x->seq < y->seq)
        cmp = -1;
    else if (x->seq > y->seq)
        cmp = 1;
    else
        cmp = 0;
    int result;
    switch (op) {
        case Py_LT: result = cmp < 0; break;
        case Py_LE: result = cmp <= 0; break;
        case Py_EQ: result = cmp == 0; break;
        case Py_NE: result = cmp != 0; break;
        case Py_GT: result = cmp > 0; break;
        case Py_GE: result = cmp >= 0; break;
        default:
            Py_RETURN_NOTIMPLEMENTED;
    }
    if (result)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

static PyObject *
cevent_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    self->cancelled = 1;
    Py_RETURN_NONE;
}

static PyObject *
cevent_repr(CEvent *self)
{
    PyObject *time_obj = PyFloat_FromDouble(self->time);
    if (time_obj == NULL)
        return NULL;
    PyObject *result = PyUnicode_FromFormat(
        "CEvent(t=%R, seq=%lld%s)", time_obj, self->seq,
        self->cancelled ? " cancelled" : "");
    Py_DECREF(time_obj);
    return result;
}

static PyMethodDef cevent_methods[] = {
    {"cancel", (PyCFunction)cevent_cancel, METH_NOARGS,
     "Mark the event so the engine skips it when it is reached."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef cevent_members[] = {
    {"time", T_DOUBLE, offsetof(CEvent, time), 0, "absolute firing time (s)"},
    {"seq", T_LONGLONG, offsetof(CEvent, seq), 0, "FIFO tie-break sequence"},
    {"fn", T_OBJECT_EX, offsetof(CEvent, fn), 0, "callback"},
    {"args", T_OBJECT_EX, offsetof(CEvent, args), 0, "callback arguments"},
    {"cancelled", T_INT, offsetof(CEvent, cancelled), 0, "cancellation mark"},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CEventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cevent.CEvent",
    .tp_doc = "C-accelerated scheduler event (drop-in for engine.Event).",
    .tp_basicsize = sizeof(CEvent),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = cevent_new,
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_richcompare = cevent_richcompare,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_methods = cevent_methods,
    .tp_members = cevent_members,
};

static PyModuleDef ceventmodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_cevent",
    .m_doc = "C-accelerated event type for the simulation engine.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__cevent(void)
{
    if (PyType_Ready(&CEventType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&ceventmodule);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CEventType);
    if (PyModule_AddObject(module, "CEvent", (PyObject *)&CEventType) < 0) {
        Py_DECREF(&CEventType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
