"""End hosts and their NICs.

A host owns one uplink to its top-of-rack switch and schedules the queue
pairs (flows) that want to transmit, round-robin, the way the RoCE NIC model
in the paper "periodically polls the MAC layer until the link is available".
Returning ACK/NACK/CNP frames are queued separately and served before data,
mirroring how responder hardware generates acknowledgements directly from the
receive pipeline.

The host is deliberately transport-agnostic: senders and receivers are duck
typed.  A sender must provide ``next_packet(now)`` (returning ``None`` when
nothing is eligible) and ``on_control(packet, now)``; a receiver must
provide ``on_data(packet, now)`` returning the control frames to send back.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Protocol

from repro.sim.link import Link, OutputPort
from repro.sim.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class SenderQP(Protocol):
    """Transmit side of a flow, as seen by the host NIC."""

    flow_id: int

    def next_packet(self, now: float) -> Optional[Packet]:
        """Pop the next packet to transmit (``None`` when nothing is
        eligible; the QP arranges its own pacing wake-up in that case)."""

    def on_control(self, packet: Packet, now: float) -> None:
        """Process an ACK/NACK/CNP addressed to this flow."""


class ReceiverQP(Protocol):
    """Receive side of a flow, as seen by the host NIC."""

    flow_id: int

    def on_data(self, packet: Packet, now: float) -> List[Packet]:
        """Consume a data packet and return control frames to send back."""


class Host:
    """An end host with a single NIC uplink."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.uplink_port: Optional[OutputPort] = None
        self.uplink: Optional[Link] = None

        self._senders: Dict[int, SenderQP] = {}
        self._receivers: Dict[int, ReceiverQP] = {}
        self._active_order: List[int] = []       # round-robin order of sender flow ids
        self._rr_index = 0
        self._control_queue: Deque[Packet] = deque()
        #: Shared quantized pacing wake-up (at most one pending per host).
        self._pacing_wakeup = None

        # Statistics
        self.data_packets_sent = 0
        self.data_packets_received = 0
        self.control_packets_sent = 0
        self.control_packets_received = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_uplink(self, link: Link) -> OutputPort:
        """Attach the host's outgoing link; returns the created port."""
        self.uplink = link
        self.uplink_port = OutputPort(self.sim, link, source=self)
        return self.uplink_port

    def add_input_link(self, link: Link) -> None:
        """Hosts sink packets directly; nothing to set up for the downlink."""

    # ------------------------------------------------------------------
    # QP registration
    # ------------------------------------------------------------------
    def register_sender(self, sender: SenderQP) -> None:
        """Register the transmit side of a flow originating at this host."""
        self._senders[sender.flow_id] = sender
        self._active_order.append(sender.flow_id)
        self.notify_ready()

    def register_receiver(self, receiver: ReceiverQP) -> None:
        """Register the receive side of a flow terminating at this host.

        Receivers that coalesce acknowledgements expose a ``send_control``
        slot; wiring it to :meth:`enqueue_control` lets their flush timer
        emit a frame outside the ``on_data`` response path.
        """
        self._receivers[receiver.flow_id] = receiver
        if hasattr(receiver, "send_control"):
            receiver.send_control = self.enqueue_control

    def deregister_sender(self, flow_id: int) -> None:
        """Remove a completed flow from the transmit scheduler."""
        self._senders.pop(flow_id, None)
        if flow_id in self._active_order:
            self._active_order.remove(flow_id)

    def sender(self, flow_id: int) -> Optional[SenderQP]:
        """Look up a registered sender by flow id."""
        return self._senders.get(flow_id)

    def receiver(self, flow_id: int) -> Optional[ReceiverQP]:
        """Look up a registered receiver by flow id."""
        return self._receivers.get(flow_id)

    # ------------------------------------------------------------------
    # NIC transmit scheduling (PacketSource protocol)
    # ------------------------------------------------------------------
    def notify_ready(self) -> None:
        """Kick the uplink; called when a QP becomes eligible to transmit."""
        if self.uplink_port is not None:
            self.uplink_port.kick()

    def enqueue_control(self, packet: Packet) -> None:
        """Queue an ACK/NACK/CNP for transmission ahead of data packets."""
        self._control_queue.append(packet)
        self.notify_ready()

    def request_pacing_wakeup(self, when: float) -> None:
        """Ask for one NIC kick at (or before) ``when``.

        All paced QPs on this host share a single pending wake-up: a request
        at or after the pending one is absorbed; an earlier request replaces
        it (the replaced timer is cancelled, which is O(1) on the wheel).
        This is what makes a saturated paced host cost one event per pacing
        quantum instead of one per QP per packet.
        """
        event = self._pacing_wakeup
        if event is not None and not event.cancelled:
            if event.time <= when:
                return
            event.cancel()
        self._pacing_wakeup = self.sim.set_timer_at(when, self._pacing_wakeup_fired)

    def _pacing_wakeup_fired(self) -> None:
        self._pacing_wakeup = None
        self.notify_ready()

    def next_packet(self, port: OutputPort) -> Optional[Packet]:
        """Serve control frames first, then round-robin over ready QPs."""
        if self._control_queue:
            self.control_packets_sent += 1
            return self._control_queue.popleft()

        if not self._active_order:
            return None
        now = self.sim.now
        count = len(self._active_order)
        for offset in range(count):
            idx = (self._rr_index + offset) % count
            flow_id = self._active_order[idx]
            sender = self._senders.get(flow_id)
            if sender is None:
                continue
            # One call instead of has_packet_ready + next_packet: the QP
            # returns None when it has nothing eligible (and arranges its
            # own pacing wake-up), identically to the readiness probe.
            packet = sender.next_packet(now)
            if packet is None:
                continue
            self._rr_index = (idx + 1) % count
            self.data_packets_sent += 1
            return packet
        return None

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Link) -> None:
        """Dispatch an arriving frame to the right QP."""
        if packet.is_pfc():
            if self.uplink_port is not None:
                if packet.ptype is PacketType.PFC_PAUSE:
                    self.uplink_port.pause()
                else:
                    self.uplink_port.resume()
            return

        if packet.ptype is PacketType.DATA:
            self.data_packets_received += 1
            receiver = self._receivers.get(packet.flow_id)
            if receiver is None:
                return
            for response in receiver.on_data(packet, self.sim.now):
                self.enqueue_control(response)
            return

        # ACK / NACK / CNP addressed to one of our senders.
        self.control_packets_received += 1
        sender = self._senders.get(packet.flow_id)
        if sender is not None:
            sender.on_control(packet, self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name})"
