"""Build and load the optional C-accelerated engine core.

The compiled core replaces the engine's Python :class:`~repro.sim.engine.Event`
with the ``CEvent`` extension type from ``_cevent.c`` -- same constructor,
attributes and ``(time, seq)`` ordering, but with C-level allocation and
comparison.  Event construction and comparison (every ``list.sort``,
``heapq`` operation and ``insort``) are the engine's per-event fixed costs,
so this is the part of the hot loop a compiled build actually accelerates;
the rest of each event is the transport/switch callback, which stays Python
either way.

There is deliberately no build system: :func:`build` issues a single C
compiler invocation using the interpreter's own ``sysconfig`` flags, and the
engine falls back to the pure-Python event type whenever the extension is
missing (``Simulator(queue="calendar_c")`` silently degrades to
``"calendar"``).  Build it with::

    python -m repro.sim.compiled --build

and select it per run with ``REPRO_ENGINE=calendar_c``.
"""

from __future__ import annotations

import argparse
import os
import shlex
import subprocess
import sys
import sysconfig
from typing import Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
SOURCE_PATH = os.path.join(_HERE, "_cevent.c")

_cached_module = None
_load_failed = False


def extension_path() -> str:
    """Where the built extension lives (next to this module)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(_HERE, "_cevent" + suffix)


def load():
    """Import and return the ``_cevent`` module (raises ``ImportError``)."""
    global _cached_module, _load_failed
    if _cached_module is None:
        from repro.sim import _cevent  # noqa: F401 -- built on demand

        _cached_module = _cevent
        _load_failed = False
    return _cached_module


def available() -> bool:
    """True when the compiled core can be imported right now.

    Negative results are cached for the life of the process (an absent
    build will not appear mid-run), so the engine's fallback check stays
    O(1) after the first probe.
    """
    global _load_failed
    if _cached_module is not None:
        return True
    if _load_failed:
        return False
    try:
        load()
        return True
    except ImportError:
        _load_failed = True
        return False


def build(force: bool = False, compiler: Optional[str] = None, verbose: bool = False) -> str:
    """Compile ``_cevent.c`` into an importable extension; returns its path.

    Uses the interpreter's own compiler and include directory from
    ``sysconfig`` -- no setuptools, no temporary build tree.  A fresh build
    is skipped when the extension is newer than the source (``force``
    overrides).
    """
    out = extension_path()
    if (
        not force
        and os.path.exists(out)
        and os.path.getmtime(out) >= os.path.getmtime(SOURCE_PATH)
    ):
        return out
    cc = compiler or sysconfig.get_config_var("CC") or "cc"
    include = sysconfig.get_paths()["include"]
    command = [
        *shlex.split(cc),
        "-shared",
        "-fPIC",
        "-O2",
        f"-I{include}",
        SOURCE_PATH,
        "-o",
        out,
    ]
    if sys.platform == "darwin":
        # macOS extension modules leave CPython symbols unresolved until
        # dlopen time (there is no libpython to link against in most
        # installs); without this the link step fails on every _Py* symbol.
        command += ["-undefined", "dynamic_lookup"]
    if verbose:
        print(" ".join(shlex.quote(part) for part in command), file=sys.stderr)
    subprocess.run(command, check=True)
    # A rebuilt extension cannot be re-imported into a process that already
    # failed the probe; reset the cache so this process can use it.
    global _load_failed
    _load_failed = False
    return out


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.compiled",
        description="Build/check the C-accelerated engine core.",
    )
    parser.add_argument("--build", action="store_true", help="compile the extension")
    parser.add_argument("--force", action="store_true", help="rebuild even if fresh")
    parser.add_argument(
        "--check", action="store_true", help="exit 0 iff the compiled core imports"
    )
    args = parser.parse_args(argv)
    if args.build:
        path = build(force=args.force, verbose=True)
        print(path)
    if args.check or not args.build:
        if available():
            print("compiled core available")
            return 0
        print("compiled core NOT available (run with --build)")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
