"""Online PFC deadlock detection.

The paper's §2 case against PFC culminates in *circular buffer dependency*
(CBD) deadlocks: a set of lossless switches each paused by the next, so no
buffer in the cycle can drain and the fabric wedges permanently.  This module
detects that condition online, as it forms, with zero perturbation of the
simulation.

The detector maintains a **wait-for graph** over the fabric's pause state:

* nodes are network nodes (switches and hosts, by name);
* a directed edge ``A -> B`` exists while the output port on the link
  ``A -> B`` is paused -- i.e. B has PFC-paused A, so A is waiting for B's
  input buffer to drain before it can forward toward B.

Hosts can never sit *on* a cycle: hosts never send PFC, so no edge ever
points into a host (a paused host uplink contributes only the edge
``host -> switch``).  Every cycle therefore runs through switches only --
exactly the CBD configuration of the paper.

On each pause transition (``False -> True``) the detector checks whether the
new edge closes a cycle; if so it records one *deadlock event* and the cycle
itself.  Resume transitions remove edges.  The check is a DFS from the edge
head back to the edge tail over current wait-for edges, so cost is bounded by
the number of concurrently paused ports -- tiny in practice -- and the hook
adds **no events and consumes no randomness**: results with the detector
installed are byte-identical to results without it.

Install via :meth:`MetricsCollector.install_deadlock_detector` (the runner
does this for every experiment) or directly with :meth:`PfcDeadlockDetector.install`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.link import OutputPort
    from repro.sim.network import Network

#: Cap on recorded cycles; events past this are counted but not stored.
MAX_RECORDED_CYCLES = 32


class PfcDeadlockDetector:
    """Wait-for-graph cycle detector over PFC pause state.

    Attributes
    ----------
    deadlock_events:
        Number of pause transitions that closed a wait-for cycle.  A
        persistent deadlock counts once per edge that (re)completes it, so an
        oscillating near-deadlock shows up as multiple events -- all of them
        genuine circular waits at the instant they were recorded.
    time_to_deadlock_s:
        Simulation time of the *first* deadlock event, or ``None``.
    cycles:
        Up to :data:`MAX_RECORDED_CYCLES` recorded cycles, each a tuple of
        node names ``(a, b, ..., a)`` in wait-for order, with the timestamp.
    """

    def __init__(self) -> None:
        #: Current wait-for edges: tail name -> sorted-iterable of head names.
        self._edges: Dict[str, Dict[str, None]] = {}
        self.deadlock_events = 0
        self.time_to_deadlock_s: Optional[float] = None
        self.cycles: List[Tuple[float, Tuple[str, ...]]] = []
        self._ports_watched = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, network: "Network") -> "PfcDeadlockDetector":
        """Attach to every output port of ``network`` (idempotent per port)."""
        for port in network.output_ports():
            self.watch(port)
        return self

    def watch(self, port: "OutputPort") -> None:
        """Observe one port's pause transitions (picks up current state)."""
        if port.pause_observer is self:
            return
        port.pause_observer = self
        self._ports_watched += 1
        if port.paused:  # port was already paused when we attached
            self.on_pause(port)

    # ------------------------------------------------------------------
    # Pause-state observer interface (called from OutputPort)
    # ------------------------------------------------------------------
    def on_pause(self, port: "OutputPort") -> None:
        tail = port.link.src.name
        head = port.link.dst.name
        heads = self._edges.get(tail)
        if heads is None:
            heads = self._edges[tail] = {}
        if head in heads:
            return
        heads[head] = None
        cycle = self._find_cycle(tail, head)
        if cycle is not None:
            self.deadlock_events += 1
            now = port.sim.now
            if self.time_to_deadlock_s is None:
                self.time_to_deadlock_s = now
            if len(self.cycles) < MAX_RECORDED_CYCLES:
                self.cycles.append((now, cycle))

    def on_resume(self, port: "OutputPort") -> None:
        tail = port.link.src.name
        heads = self._edges.get(tail)
        if heads is not None:
            heads.pop(port.link.dst.name, None)
            if not heads:
                del self._edges[tail]

    # ------------------------------------------------------------------
    # Cycle search
    # ------------------------------------------------------------------
    def _find_cycle(self, tail: str, head: str) -> Optional[Tuple[str, ...]]:
        """A wait-for path ``head -> ... -> tail``, closing the new edge
        ``tail -> head`` into a cycle -- or ``None``.

        Iterative DFS over sorted neighbours so the recorded path is
        deterministic regardless of pause arrival order within a timestamp.
        """
        edges = self._edges
        # path holds the node sequence from `head`; stack holds iterators.
        path = [head]
        stack = [iter(sorted(edges.get(head, ())))]
        visited = {head}
        while stack:
            for nxt in stack[-1]:
                if nxt == tail:
                    return (tail, *path, tail)
                if nxt not in visited:
                    visited.add(nxt)
                    path.append(nxt)
                    stack.append(iter(sorted(edges.get(nxt, ()))))
                    break
            else:
                stack.pop()
                path.pop()
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def waiting_edges(self) -> List[Tuple[str, str]]:
        """Current wait-for edges as sorted ``(tail, head)`` pairs."""
        return sorted(
            (tail, head) for tail, heads in self._edges.items() for head in heads
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PfcDeadlockDetector(events={self.deadlock_events}, "
            f"edges={len(self.waiting_edges)}, ports={self._ports_watched})"
        )
