"""Packet and frame definitions.

Packets model RoCEv2-style datagrams: a data payload carried over
Ethernet/IP/UDP with a base transport header (PSN, opcode) plus the IRN
extensions described in §5 of the paper (per-packet RETH, WQE sequence
numbers).  Control frames (ACK/NACK, DCQCN CNPs, PFC pause/resume) use the
same class with a different :class:`PacketType`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional


class PacketType(Enum):
    """Kinds of frames that traverse the simulated network."""

    DATA = auto()
    ACK = auto()
    NACK = auto()
    CNP = auto()          # DCQCN congestion notification packet
    PFC_PAUSE = auto()    # priority flow control X-OFF
    PFC_RESUME = auto()   # priority flow control X-ON


#: Ethernet + IP + UDP + BTH (+ICRC) overhead carried by every RoCEv2 packet.
DEFAULT_HEADER_BYTES = 48

#: Size of an ACK/NACK/CNP control frame on the wire.
CONTROL_FRAME_BYTES = 64

#: Size of a PFC pause/resume frame on the wire.
PFC_FRAME_BYTES = 64


_packet_ids = itertools.count()


@dataclass
class Packet:
    """A single frame in flight.

    Attributes
    ----------
    flow_id:
        Identifier of the flow (queue pair) the packet belongs to.  Control
        frames echo the flow id of the data flow they refer to.
    src, dst:
        Names of the originating and destination hosts.
    psn:
        Packet sequence number within the flow (data packets), or the
        sequence number being acknowledged (ACK/NACK).
    payload_bytes:
        Application payload carried (0 for control frames).
    header_bytes:
        Wire overhead added to the payload.  IRN's worst-case overhead model
        (§6.3) inflates this by 16 bytes per data packet.
    """

    ptype: PacketType
    flow_id: int
    src: str
    dst: str
    psn: int = 0
    payload_bytes: int = 0
    header_bytes: int = DEFAULT_HEADER_BYTES
    priority: int = 0

    # Acknowledgement fields -------------------------------------------------
    #: Cumulative acknowledgement (the receiver's expected sequence number).
    cumulative_ack: int = 0
    #: Sequence number that triggered a NACK (IRN's simplified SACK field).
    sack_psn: Optional[int] = None
    #: True when the NACK signals "receiver not ready" or another error that
    #: must trigger go-back-N semantics even under IRN (§B.4).
    error_nack: bool = False

    # Congestion signalling ---------------------------------------------------
    #: ECN Congestion Experienced codepoint, set by switches.
    ecn: bool = False
    #: Echo of the ECN bit in ACKs (used by DCTCP-style control).
    ecn_echo: bool = False

    # Message bookkeeping ------------------------------------------------------
    #: Identifier of the RDMA message this packet belongs to.
    msg_id: int = 0
    #: True for the last packet of its message.
    last_of_message: bool = False
    #: True if this is a retransmission.
    retransmitted: bool = False

    # Timestamps ---------------------------------------------------------------
    #: Time the packet (or the data packet an ACK acknowledges) was sent;
    #: used for RTT estimation by Timely and the TCP stack.
    sent_time: float = 0.0
    #: Timestamp echoed back by the receiver in ACKs.
    echo_time: float = 0.0

    # PFC ------------------------------------------------------------------------
    #: For PFC frames: the priority class being paused/resumed.
    pfc_priority: int = 0

    #: Unique id, handy for debugging and for per-packet ECMP spraying.
    uid: int = field(default_factory=lambda: next(_packet_ids))

    #: Total wire size of the frame, fixed at construction (every sizing
    #: field is an init argument; post-construction mutation only touches
    #: marking/acknowledgement fields).  Plain attributes because the
    #: serialization path reads them per transmitted packet.
    size_bytes: int = field(init=False, repr=False, default=0)
    #: Total wire size in bits.
    size_bits: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if self.ptype is PacketType.DATA:
            self.size_bytes = self.payload_bytes + self.header_bytes
        elif self.ptype in (PacketType.PFC_PAUSE, PacketType.PFC_RESUME):
            self.size_bytes = PFC_FRAME_BYTES
        else:
            self.size_bytes = CONTROL_FRAME_BYTES
        self.size_bits = self.size_bytes * 8

    def is_control(self) -> bool:
        """True for ACK/NACK/CNP frames (not data, not PFC)."""
        return self.ptype in (PacketType.ACK, PacketType.NACK, PacketType.CNP)

    def is_pfc(self) -> bool:
        """True for PFC pause/resume frames."""
        return self.ptype in (PacketType.PFC_PAUSE, PacketType.PFC_RESUME)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.ptype.name}, flow={self.flow_id}, psn={self.psn}, "
            f"{self.src}->{self.dst}, {self.size_bytes}B)"
        )
