"""Small topologies used for unit tests, examples and incast experiments.

These are not part of the paper's evaluation fabric but exercise the same
switch, PFC and transport code paths at a scale where behaviour is easy to
reason about (and fast to simulate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.network import Network
from repro.sim.switch import SwitchConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


def build_star(
    sim: "Simulator",
    num_hosts: int,
    bandwidth_bps: float = 10e9,
    link_delay_s: float = 1e-6,
    switch_config: Optional[SwitchConfig] = None,
) -> Network:
    """A single switch with ``num_hosts`` hosts attached (incast testbed).

    Hosts are named ``h0 .. h<n-1>``; the switch is ``s0``.
    """
    if num_hosts < 2:
        raise ValueError("a star topology needs at least two hosts")
    network = Network(sim)
    network.add_switch("s0", config=switch_config)
    for i in range(num_hosts):
        name = f"h{i}"
        network.add_host(name)
        network.connect(name, "s0", bandwidth_bps, link_delay_s)
    network.build_routing()
    return network


def build_dumbbell(
    sim: "Simulator",
    hosts_per_side: int,
    bandwidth_bps: float = 10e9,
    bottleneck_bps: Optional[float] = None,
    link_delay_s: float = 1e-6,
    switch_config: Optional[SwitchConfig] = None,
    bottleneck_delay_s: Optional[float] = None,
) -> Network:
    """Two switches joined by a (possibly slower, possibly longer) bottleneck.

    Left hosts are ``h0 .. h<n-1>`` on switch ``s0``; right hosts are
    ``h<n> .. h<2n-1>`` on switch ``s1``.  ``bottleneck_delay_s`` overrides
    the propagation delay of the s0--s1 link only (the WAN case); ``None``
    keeps the fabric homogeneous.
    """
    if hosts_per_side < 1:
        raise ValueError("need at least one host per side")
    bottleneck_bps = bottleneck_bps or bandwidth_bps
    if bottleneck_delay_s is None:
        bottleneck_delay_s = link_delay_s
    network = Network(sim)
    network.add_switch("s0", config=switch_config)
    network.add_switch("s1", config=switch_config)
    network.connect("s0", "s1", bottleneck_bps, bottleneck_delay_s)
    for i in range(hosts_per_side):
        name = f"h{i}"
        network.add_host(name)
        network.connect(name, "s0", bandwidth_bps, link_delay_s)
    for i in range(hosts_per_side, 2 * hosts_per_side):
        name = f"h{i}"
        network.add_host(name)
        network.connect(name, "s1", bandwidth_bps, link_delay_s)
    network.build_routing()
    return network


def build_parking_lot(
    sim: "Simulator",
    num_switches: int = 3,
    hosts_per_switch: int = 2,
    bandwidth_bps: float = 10e9,
    link_delay_s: float = 1e-6,
    switch_config: Optional[SwitchConfig] = None,
) -> Network:
    """A chain of switches, each with local hosts (multi-hop congestion).

    This shape is the canonical demonstration of PFC congestion spreading: a
    pause at the last hop propagates back along the chain and head-of-line
    blocks traffic that never crosses the congested link.
    """
    if num_switches < 2:
        raise ValueError("a parking lot needs at least two switches")
    network = Network(sim)
    for s in range(num_switches):
        network.add_switch(f"s{s}", config=switch_config)
    for s in range(num_switches - 1):
        network.connect(f"s{s}", f"s{s + 1}", bandwidth_bps, link_delay_s)
    host_index = 0
    for s in range(num_switches):
        for _ in range(hosts_per_switch):
            name = f"h{host_index}"
            network.add_host(name)
            network.connect(name, f"s{s}", bandwidth_bps, link_delay_s)
            host_index += 1
    network.build_routing()
    return network


# ---------------------------------------------------------------------------
# Registry entries (the experiment layer resolves topologies by name)
# ---------------------------------------------------------------------------
from repro.topology.registry import register_topology  # noqa: E402


@register_topology(
    "star",
    max_hop_count=2,
    switch_radix=lambda config: config.num_hosts,
)
def _build_star_from_config(sim: "Simulator", config, switch_config) -> Network:
    return build_star(
        sim,
        config.num_hosts,
        config.link_bandwidth_bps,
        config.link_delay_s,
        switch_config,
    )


@register_topology("dumbbell", max_hop_count=3, switch_radix=4)
def _build_dumbbell_from_config(sim: "Simulator", config, switch_config) -> Network:
    return build_dumbbell(
        sim,
        max(1, config.num_hosts // 2),
        config.link_bandwidth_bps,
        link_delay_s=config.link_delay_s,
        switch_config=switch_config,
    )


@register_topology(
    "wan_dumbbell",
    max_hop_count=3,
    switch_radix=4,
    path_delay_s=lambda config: 2.0 * config.link_delay_s + config.wan_delay_s,
)
def _build_wan_dumbbell_from_config(sim: "Simulator", config, switch_config) -> Network:
    """A dumbbell whose s0--s1 bottleneck is a long-haul link: host links keep
    the intra-DC ``link_delay_s`` while the bottleneck carries ``wan_delay_s``
    (1000x longer by default), the smallest fabric with the delay
    heterogeneity that exercises the hierarchical calendar's upper levels."""
    return build_dumbbell(
        sim,
        max(1, config.num_hosts // 2),
        config.link_bandwidth_bps,
        link_delay_s=config.link_delay_s,
        switch_config=switch_config,
        bottleneck_delay_s=config.wan_delay_s,
    )


@register_topology("parking_lot", max_hop_count=4, switch_radix=4)
def _build_parking_lot_from_config(sim: "Simulator", config, switch_config) -> Network:
    return build_parking_lot(
        sim,
        bandwidth_bps=config.link_bandwidth_bps,
        link_delay_s=config.link_delay_s,
        switch_config=switch_config,
    )
