"""Topology builders used by the paper's evaluation and by the test suite."""

from repro.topology.fattree import FatTreeParams, build_fat_tree
from repro.topology.simple import (
    build_dumbbell,
    build_parking_lot,
    build_star,
)

__all__ = [
    "FatTreeParams",
    "build_fat_tree",
    "build_dumbbell",
    "build_parking_lot",
    "build_star",
]
