"""Topology builders used by the paper's evaluation and by the test suite.

Topologies are pluggable: every family registers itself in
:data:`TOPOLOGIES` under a name, and the experiment layer resolves
``ExperimentConfig.topology`` through that registry.  Register a new family
with :func:`register_topology` -- no engine module needs editing::

    from repro.topology import register_topology

    @register_topology("ring", max_hop_count=4, switch_radix=4)
    def build_ring(sim, config, switch_config):
        network = Network(sim)
        ...
        return network
"""

from repro.topology.registry import TOPOLOGIES, TopologyBuilder, register_topology
from repro.topology.cyclic import build_ring
from repro.topology.fattree import FatTreeParams, build_fat_tree
from repro.topology.simple import (
    build_dumbbell,
    build_parking_lot,
    build_star,
)

__all__ = [
    "TOPOLOGIES",
    "TopologyBuilder",
    "register_topology",
    "FatTreeParams",
    "build_fat_tree",
    "build_dumbbell",
    "build_parking_lot",
    "build_ring",
    "build_star",
]
