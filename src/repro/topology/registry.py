"""The topology registry: name -> :class:`TopologyBuilder`.

A registered topology is a builder callable plus the two pieces of metadata
:class:`~repro.experiments.config.ExperimentConfig` needs to derive RTOs,
buffer sizes and the BDP cap without hard-coding per-topology branches:

* ``max_hop_count(config)`` -- hops on the longest host-to-host path;
* ``switch_radix(config)`` -- ports per switch (bounds how many inputs can
  congest one output, which sizes RTO_high);
* ``path_delay_s(config)`` -- optional one-way propagation delay of the
  longest path, for fabrics with heterogeneous per-link delays (WAN
  topologies).  ``None`` (the default, and every pre-existing topology)
  means homogeneous links: the config derives the delay as
  ``max_hop_count * link_delay_s`` exactly as before.

Builders take ``(sim, config, switch_config)`` and return a wired
:class:`~repro.sim.network.Network`; ``config`` is duck-typed (any object
with the fields the builder reads), so this module never imports the
experiment layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence, Union

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.network import Network
    from repro.sim.switch import SwitchConfig

__all__ = ["TOPOLOGIES", "TopologyBuilder", "register_topology"]

#: Either a constant or a per-config derivation of a topology property.
ConfigMetric = Union[int, Callable[[Any], int]]

#: Optional per-config delay metadata (seconds); ``None`` = homogeneous links.
ConfigDelay = Union[float, Callable[[Any], float], None]


def _as_metric(value: ConfigMetric) -> Callable[[Any], int]:
    if callable(value):
        return value
    return lambda config, _value=value: _value


def _as_delay(value: ConfigDelay) -> "Callable[[Any], float] | None":
    if value is None or callable(value):
        return value
    return lambda config, _value=value: _value


@dataclass(frozen=True)
class TopologyBuilder:
    """A buildable topology family plus the metadata the config layer needs."""

    name: str
    build: Callable[["Simulator", Any, "SwitchConfig"], "Network"]
    max_hop_count: Callable[[Any], int]
    switch_radix: Callable[[Any], int]
    #: One-way propagation delay of the longest path; ``None`` for
    #: homogeneous fabrics (derived as ``max_hop_count * link_delay_s``).
    path_delay_s: "Callable[[Any], float] | None" = None

    def __call__(self, sim: "Simulator", config: Any, switch_config: "SwitchConfig") -> "Network":
        return self.build(sim, config, switch_config)


TOPOLOGIES: Registry[TopologyBuilder] = Registry("topology")


def register_topology(
    name: str,
    *,
    max_hop_count: ConfigMetric,
    switch_radix: ConfigMetric = 4,
    path_delay_s: ConfigDelay = None,
    aliases: Sequence[str] = (),
    replace: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator registering a ``(sim, config, switch_config) -> Network`` builder."""

    def decorator(build: Callable) -> Callable:
        TOPOLOGIES.register(
            name,
            TopologyBuilder(
                name=name,
                build=build,
                max_hop_count=_as_metric(max_hop_count),
                switch_radix=_as_metric(switch_radix),
                path_delay_s=_as_delay(path_delay_s),
            ),
            aliases=aliases,
            replace=replace,
        )
        return build

    return decorator
