"""The topology registry: name -> :class:`TopologyBuilder`.

A registered topology is a builder callable plus the two pieces of metadata
:class:`~repro.experiments.config.ExperimentConfig` needs to derive RTOs,
buffer sizes and the BDP cap without hard-coding per-topology branches:

* ``max_hop_count(config)`` -- hops on the longest host-to-host path;
* ``switch_radix(config)`` -- ports per switch (bounds how many inputs can
  congest one output, which sizes RTO_high).

Builders take ``(sim, config, switch_config)`` and return a wired
:class:`~repro.sim.network.Network`; ``config`` is duck-typed (any object
with the fields the builder reads), so this module never imports the
experiment layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence, Union

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.network import Network
    from repro.sim.switch import SwitchConfig

__all__ = ["TOPOLOGIES", "TopologyBuilder", "register_topology"]

#: Either a constant or a per-config derivation of a topology property.
ConfigMetric = Union[int, Callable[[Any], int]]


def _as_metric(value: ConfigMetric) -> Callable[[Any], int]:
    if callable(value):
        return value
    return lambda config, _value=value: _value


@dataclass(frozen=True)
class TopologyBuilder:
    """A buildable topology family plus the metadata the config layer needs."""

    name: str
    build: Callable[["Simulator", Any, "SwitchConfig"], "Network"]
    max_hop_count: Callable[[Any], int]
    switch_radix: Callable[[Any], int]

    def __call__(self, sim: "Simulator", config: Any, switch_config: "SwitchConfig") -> "Network":
        return self.build(sim, config, switch_config)


TOPOLOGIES: Registry[TopologyBuilder] = Registry("topology")


def register_topology(
    name: str,
    *,
    max_hop_count: ConfigMetric,
    switch_radix: ConfigMetric = 4,
    aliases: Sequence[str] = (),
    replace: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator registering a ``(sim, config, switch_config) -> Network`` builder."""

    def decorator(build: Callable) -> Callable:
        TOPOLOGIES.register(
            name,
            TopologyBuilder(
                name=name,
                build=build,
                max_hop_count=_as_metric(max_hop_count),
                switch_radix=_as_metric(switch_radix),
            ),
            aliases=aliases,
            replace=replace,
        )
        return build

    return decorator
