"""Cyclic topologies: fabrics with routing loops in the *buffer* graph.

The preset fat-tree/star/dumbbell/parking-lot family is loop-free by
construction, so none of those fabrics can ever exhibit the paper's §2
circular-buffer-dependency (CBD) deadlock.  The ring built here is the
minimal fabric that can: ``num_switches`` switches joined in a cycle, each
with ``hosts_per_switch`` local hosts.

With the ``circular`` workload (each switch's senders target the next
switches around the ring), every switch's output port toward its local
receiver is shared by two full-rate inter-switch inputs; those input buffers
fill, each switch PFC-pauses both upstream switches, and the pause wait-for
graph closes into the cycle the online detector
(:mod:`repro.sim.deadlock`) reports.  Under IRN (PFC off) the same
configuration drops instead of pausing and no deadlock can form.

Host naming contract (relied on by the ``circular`` workload): host
``h{i * hosts_per_switch + k}`` attaches to switch ``s{i}``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.network import Network
from repro.sim.switch import SwitchConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


def build_ring(
    sim: "Simulator",
    num_switches: int = 3,
    hosts_per_switch: int = 3,
    bandwidth_bps: float = 10e9,
    link_delay_s: float = 1e-6,
    switch_config: Optional[SwitchConfig] = None,
) -> Network:
    """A cycle of switches, each with local hosts.

    Switches are ``s0 .. s{n-1}`` with ``s{i}`` linked to ``s{(i+1) % n}``;
    hosts are ``h{i * hosts_per_switch + k}`` on switch ``s{i}``.
    """
    if num_switches < 3:
        raise ValueError("a ring needs at least three switches to form a cycle")
    if hosts_per_switch < 1:
        raise ValueError("need at least one host per switch")
    network = Network(sim)
    for s in range(num_switches):
        network.add_switch(f"s{s}", config=switch_config)
    for s in range(num_switches):
        network.connect(f"s{s}", f"s{(s + 1) % num_switches}", bandwidth_bps, link_delay_s)
    for s in range(num_switches):
        for k in range(hosts_per_switch):
            name = f"h{s * hosts_per_switch + k}"
            network.add_host(name)
            network.connect(name, f"s{s}", bandwidth_bps, link_delay_s)
    network.build_routing()
    return network


# ---------------------------------------------------------------------------
# Registry entry (the experiment layer resolves topologies by name)
# ---------------------------------------------------------------------------
from repro.topology.registry import register_topology  # noqa: E402


@register_topology(
    "ring",
    # Longest shortest path: halfway around the ring plus the two host hops.
    max_hop_count=lambda config: config.ring_switches // 2 + 2,
    switch_radix=lambda config: max(1, config.num_hosts // config.ring_switches) + 2,
)
def _build_ring_from_config(sim: "Simulator", config, switch_config) -> Network:
    return build_ring(
        sim,
        num_switches=config.ring_switches,
        hosts_per_switch=max(1, config.num_hosts // config.ring_switches),
        bandwidth_bps=config.link_bandwidth_bps,
        link_delay_s=config.link_delay_s,
        switch_config=switch_config,
    )
