"""Three-tier fat-tree topologies.

The paper's default scenario is a 54-server, full-bisection-bandwidth
three-tier fat-tree built from 45 6-port switches in 6 pods (the classic
k-ary fat-tree of Al-Fares et al. with k = 6, minus the one host slot used
for measurement infrastructure in the vendor simulator; we build the full
k^3/4 hosts and let the workload select how many are active).  The appendix
scales the arity to k = 8 (128 servers) and k = 10 (250 servers).

A k-ary fat-tree has:

* ``(k/2)^2`` core switches,
* ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge switches,
* ``k/2`` hosts per edge switch, i.e. ``k^3/4`` hosts total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.sim.network import Network
from repro.sim.switch import SwitchConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


@dataclass
class FatTreeParams:
    """Parameters of a k-ary fat-tree fabric.

    Attributes
    ----------
    k:
        Switch arity (number of ports); must be even.
    link_bandwidth_bps:
        Rate of every link (hosts and fabric links are homogeneous, giving
        full bisection bandwidth).
    link_delay_s:
        Per-hop propagation delay (the paper uses 2 microseconds).
    """

    k: int = 4
    link_bandwidth_bps: float = 40e9
    link_delay_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError("fat-tree arity k must be an even integer >= 2")

    @property
    def num_hosts(self) -> int:
        """Total number of servers, k^3 / 4."""
        return self.k ** 3 // 4

    @property
    def num_pods(self) -> int:
        return self.k

    @property
    def num_core_switches(self) -> int:
        return (self.k // 2) ** 2

    @property
    def num_switches(self) -> int:
        """Core + aggregation + edge switches."""
        return self.num_core_switches + self.k * self.k

    @property
    def max_hop_count(self) -> int:
        """Hops on the longest (inter-pod, via core) host-to-host path."""
        return 6

    def longest_path_rtt(self) -> float:
        """Two-way propagation delay of the longest path (no queueing)."""
        return 2.0 * self.max_hop_count * self.link_delay_s

    def bdp_bytes(self) -> int:
        """Bandwidth-delay product of the longest path, in bytes.

        The paper computes the BDP over the 6-hop path: 40 Gbps x 12 links
        x 2 microseconds / 8 = 120KB for the default scenario.
        """
        return int(self.link_bandwidth_bps * self.longest_path_rtt() / 8.0)

    def bdp_packets(self, mtu_bytes: int = 1000) -> int:
        """BDP expressed in MTU-sized packets (the BDP-FC cap)."""
        return max(1, self.bdp_bytes() // mtu_bytes)


def _add_fat_tree(
    network: Network,
    params: FatTreeParams,
    switch_config: Optional[SwitchConfig],
    prefix: str = "",
    host_offset: int = 0,
) -> List[str]:
    """Wire one k-ary fat-tree into ``network`` and return its core switches.

    Switch names gain ``prefix``; hosts are numbered from ``host_offset`` so
    multiple trees on one network share a single global ``h<i>`` namespace
    (workloads address hosts by index, not by datacenter).
    """
    k = params.k
    half = k // 2

    core_names: List[str] = []
    for i in range(params.num_core_switches):
        name = f"{prefix}core_{i}"
        network.add_switch(name, config=switch_config)
        core_names.append(name)

    host_index = host_offset
    for pod in range(k):
        agg_names = []
        edge_names = []
        for j in range(half):
            agg = f"{prefix}agg_p{pod}_{j}"
            edge = f"{prefix}edge_p{pod}_{j}"
            network.add_switch(agg, config=switch_config)
            network.add_switch(edge, config=switch_config)
            agg_names.append(agg)
            edge_names.append(edge)

        # Edge <-> aggregation full mesh within the pod.
        for edge in edge_names:
            for agg in agg_names:
                network.connect(edge, agg, params.link_bandwidth_bps, params.link_delay_s)

        # Hosts under each edge switch.
        for edge in edge_names:
            for _ in range(half):
                host = f"h{host_index}"
                network.add_host(host)
                network.connect(host, edge, params.link_bandwidth_bps, params.link_delay_s)
                host_index += 1

        # Aggregation <-> core. The j-th aggregation switch of every pod
        # connects to core switches [j*half, (j+1)*half).
        for j, agg in enumerate(agg_names):
            for c in range(half):
                core = core_names[j * half + c]
                network.connect(agg, core, params.link_bandwidth_bps, params.link_delay_s)

    return core_names


def build_fat_tree(
    sim: "Simulator",
    params: Optional[FatTreeParams] = None,
    switch_config: Optional[SwitchConfig] = None,
) -> Network:
    """Build a k-ary fat-tree :class:`Network`.

    Node naming scheme:

    * hosts: ``h<i>`` for ``i`` in ``0 .. k^3/4 - 1``
    * edge switches: ``edge_p<pod>_<j>``
    * aggregation switches: ``agg_p<pod>_<j>``
    * core switches: ``core_<i>``
    """
    params = params or FatTreeParams()
    network = Network(sim)
    _add_fat_tree(network, params, switch_config)
    network.build_routing()
    return network


def build_inter_dc_fat_tree(
    sim: "Simulator",
    params: Optional[FatTreeParams] = None,
    wan_delay_s: float = 1e-3,
    switch_config: Optional[SwitchConfig] = None,
) -> Network:
    """Two k-ary fat-tree datacenters joined core-to-core by long-haul links.

    Each DC is a full fat-tree with switch names prefixed ``dc0_`` / ``dc1_``;
    hosts are numbered globally (``h0 .. h<N-1>`` in DC0, ``h<N> ..
    h<2N-1>`` in DC1, ``N = k^3/4``).  The i-th core switch of DC0 connects
    to the i-th core of DC1 at the fabric bandwidth but with ``wan_delay_s``
    propagation -- 100-1000x the intra-DC hop -- so a cross-DC path is 7
    hops: host-edge-agg-core, the WAN crossing, then core-agg-edge-host.
    """
    params = params or FatTreeParams()
    network = Network(sim)
    dc0_cores = _add_fat_tree(network, params, switch_config, prefix="dc0_")
    dc1_cores = _add_fat_tree(
        network, params, switch_config, prefix="dc1_", host_offset=params.num_hosts
    )
    for a, b in zip(dc0_cores, dc1_cores):
        network.connect(a, b, params.link_bandwidth_bps, wan_delay_s)
    network.build_routing()
    return network


# ---------------------------------------------------------------------------
# Registry entry
# ---------------------------------------------------------------------------
from repro.topology.registry import register_topology  # noqa: E402


@register_topology(
    "fat_tree",
    max_hop_count=lambda config: FatTreeParams(k=config.fat_tree_k).max_hop_count,
    switch_radix=lambda config: config.fat_tree_k,
)
def _build_fat_tree_from_config(sim: "Simulator", config, switch_config) -> Network:
    """Registry adapter: derive :class:`FatTreeParams` from an experiment config."""
    return build_fat_tree(
        sim,
        FatTreeParams(
            k=config.fat_tree_k,
            link_bandwidth_bps=config.link_bandwidth_bps,
            link_delay_s=config.link_delay_s,
        ),
        switch_config,
    )


@register_topology(
    "inter_dc_fattree",
    # host-edge-agg-core + WAN crossing + core-agg-edge-host.
    max_hop_count=7,
    switch_radix=lambda config: config.fat_tree_k,
    path_delay_s=lambda config: 6.0 * config.link_delay_s + config.wan_delay_s,
    aliases=("inter_dc_fat_tree",),
)
def _build_inter_dc_fat_tree_from_config(sim: "Simulator", config, switch_config) -> Network:
    """Registry adapter: two fat-tree DCs with a ``wan_delay_s`` long haul."""
    return build_inter_dc_fat_tree(
        sim,
        FatTreeParams(
            k=config.fat_tree_k,
            link_bandwidth_bps=config.link_bandwidth_bps,
            link_delay_s=config.link_delay_s,
        ),
        wan_delay_s=config.wan_delay_s,
        switch_config=switch_config,
    )
