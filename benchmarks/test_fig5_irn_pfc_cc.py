"""Figure 5: enabling PFC with IRN when Timely or DCQCN is used.

Paper result: with explicit congestion control IRN's performance is largely
unaffected by PFC (largest improvement < 1%, largest degradation ~3.4%),
because the congestion control keeps both drop rates and pause counts low.

Each scheme runs over a three-seed axis; the ratio assertion is on
:func:`aggregate_rows` means rather than a single seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig5_pfc_with_irn_under_congestion_control(benchmark):
    base = scenarios.fig5_configs(num_flows=BENCH_FLOWS)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 5: IRN +/- PFC with Timely / DCQCN, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    for cc in ("timely", "dcqcn"):
        with_pfc = aggregates[f"IRN with PFC +{cc}"]
        without_pfc = aggregates[f"IRN +{cc}"]
        assert with_pfc["replicas"] == len(BENCH_SEEDS)
        # PFC makes little difference to IRN once congestion control is on --
        # on seed-averaged FCT.
        ratio = without_pfc["avg_fct_s_mean"] / with_pfc["avg_fct_s_mean"]
        assert 0.7 <= ratio <= 1.3
