"""Figure 5: enabling PFC with IRN when Timely or DCQCN is used.

Paper result: with explicit congestion control IRN's performance is largely
unaffected by PFC (largest improvement < 1%, largest degradation ~3.4%),
because the congestion control keeps both drop rates and pause counts low.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig5_pfc_with_irn_under_congestion_control(benchmark):
    configs = scenarios.fig5_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 5: IRN +/- PFC with Timely / DCQCN", results)
    assert_all_completed(results)

    for cc in ("timely", "dcqcn"):
        with_pfc = results[f"IRN with PFC +{cc}"]
        without_pfc = results[f"IRN +{cc}"]
        # PFC makes little difference to IRN once congestion control is on.
        ratio = without_pfc.summary.avg_fct / with_pfc.summary.avg_fct
        assert 0.7 <= ratio <= 1.3
