"""Figure 2: impact of enabling PFC with IRN.

Paper result: enabling PFC *degrades* IRN by 1.5-2x (head-of-line blocking and
congestion spreading).  At benchmark scale the congestion-spreading effect is
attenuated, so the claim asserted here is the qualitative one: IRN does not
need PFC -- enabling it buys at most a marginal improvement.

Each scheme runs over a three-seed axis in one sweep; the assertions are on
:func:`aggregate_rows` means with replica counts.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig2_enabling_pfc_with_irn(benchmark):
    base = scenarios.fig2_configs(num_flows=BENCH_FLOWS)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 2: IRN with vs without PFC, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    without_pfc = aggregates["IRN (without PFC)"]
    with_pfc = aggregates["IRN with PFC"]
    for record in (without_pfc, with_pfc):
        assert record["replicas"] == len(BENCH_SEEDS)
        assert record["seeds"] == sorted(BENCH_SEEDS)
    # IRN does not require PFC: running lossy costs at most a small factor on
    # the seed-averaged metrics (the paper shows it actually helps by 1.5-2x
    # at full scale).
    assert without_pfc["avg_fct_s_mean"] <= 1.25 * with_pfc["avg_fct_s_mean"]
    assert without_pfc["avg_slowdown_mean"] <= 1.25 * with_pfc["avg_slowdown_mean"]
