"""Figure 2: impact of enabling PFC with IRN.

Paper result: enabling PFC *degrades* IRN by 1.5-2x (head-of-line blocking and
congestion spreading).  At benchmark scale the congestion-spreading effect is
attenuated, so the claim asserted here is the qualitative one: IRN does not
need PFC -- enabling it buys at most a marginal improvement.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig2_enabling_pfc_with_irn(benchmark):
    configs = scenarios.fig2_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 2: IRN with vs without PFC", results)
    assert_all_completed(results)

    without_pfc = results["IRN (without PFC)"]
    with_pfc = results["IRN with PFC"]
    # IRN does not require PFC: running lossy costs at most a small factor
    # (the paper shows it actually helps by 1.5-2x at full scale).
    assert without_pfc.summary.avg_fct <= 1.25 * with_pfc.summary.avg_fct
    assert without_pfc.summary.avg_slowdown <= 1.25 * with_pfc.summary.avg_slowdown
