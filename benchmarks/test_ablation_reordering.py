"""Ablation (§7, "Reordering due to load-balancing"): per-packet spraying.

IRN's out-of-order support allows load-balancing schemes that reorder packets
within a flow.  This ablation runs IRN over per-packet spraying and checks
that every flow still completes, while go-back-N RoCE pays a heavy
retransmission penalty under the same reordering.

Both schemes run over a three-seed axis (spray routing is installed after
network build, so this benchmark drives the runner internals directly rather
than going through ``run_sweep``); the retransmission comparison sums over
the replicas.
"""

from repro.core.factory import TransportKind
from repro.experiments import scenarios
from repro.experiments.runner import (
    _build_network,
    _generate_flows,
    _FlowLauncher,
    _make_simulator,
)
from repro.metrics.collector import MetricsCollector

from benchmarks.conftest import BENCH_SEEDS


def _run_with_spray(config):
    """Run one experiment with per-packet-spray routing installed."""
    sim = _make_simulator(config)
    network = _build_network(sim, config)
    network.build_routing(packet_spray=True)
    collector = MetricsCollector(network, mtu_bytes=config.mtu_bytes,
                                 header_bytes=config.effective_header_bytes())
    launcher = _FlowLauncher(sim, network, config, collector)
    flows = _generate_flows(config, network)
    for flow in flows:
        sim.schedule_at(flow.start_time, launcher.launch, flow)
    sim.run(until=config.max_sim_time_s, max_events=config.max_events)
    completed = sum(1 for flow in flows if flow.completed)
    retransmissions = sum(sender.retransmissions for sender in launcher.senders)
    return completed / len(flows), retransmissions


def test_packet_spray_reordering_ablation(benchmark):
    def run_all():
        outcomes = {"irn": [], "roce": []}
        for seed in BENCH_SEEDS:
            irn_config = scenarios.default_config(
                TransportKind.IRN, pfc_enabled=False, num_flows=80, seed=seed)
            roce_config = scenarios.default_config(
                TransportKind.ROCE, pfc_enabled=True, num_flows=80, seed=seed)
            outcomes["irn"].append(_run_with_spray(irn_config))
            outcomes["roce"].append(_run_with_spray(roce_config))
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    irn_rtx = sum(rtx for _, rtx in outcomes["irn"])
    roce_rtx = sum(rtx for _, rtx in outcomes["roce"])
    print("\n=== Ablation: per-packet spraying (packet reordering) ===")
    for seed, (done, rtx) in zip(BENCH_SEEDS, outcomes["irn"]):
        print(f"IRN  (no PFC) seed={seed}: completed={done:.0%} retransmissions={rtx}")
    for seed, (done, rtx) in zip(BENCH_SEEDS, outcomes["roce"]):
        print(f"RoCE (PFC)    seed={seed}: completed={done:.0%} retransmissions={rtx}")

    # IRN tolerates reordering: every flow completes in every replica, and
    # spurious retransmissions stay far below go-back-N's redundant resends
    # summed over the replicas.
    for done, _ in outcomes["irn"]:
        assert done == 1.0
    assert roce_rtx > irn_rtx
