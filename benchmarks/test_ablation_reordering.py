"""Ablation (§7, "Reordering due to load-balancing"): per-packet spraying.

IRN's out-of-order support allows load-balancing schemes that reorder packets
within a flow.  This ablation runs IRN over per-packet spraying and checks
that every flow still completes, while go-back-N RoCE pays a heavy
retransmission penalty under the same reordering.
"""

from repro.core.factory import TransportKind
from repro.experiments import scenarios
from repro.experiments.runner import (
    _build_network,
    _generate_flows,
    _FlowLauncher,
)
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator


def _run_with_spray(config):
    """Run one experiment with per-packet-spray routing installed."""
    sim = Simulator(seed=config.seed)
    network = _build_network(sim, config)
    network.build_routing(packet_spray=True)
    collector = MetricsCollector(network, mtu_bytes=config.mtu_bytes,
                                 header_bytes=config.effective_header_bytes())
    launcher = _FlowLauncher(sim, network, config, collector)
    flows = _generate_flows(config, network)
    for flow in flows:
        sim.schedule_at(flow.start_time, launcher.launch, flow)
    sim.run(until=config.max_sim_time_s, max_events=config.max_events)
    completed = sum(1 for flow in flows if flow.completed)
    retransmissions = sum(sender.retransmissions for sender in launcher.senders)
    return completed / len(flows), retransmissions, collector


def test_packet_spray_reordering_ablation(benchmark):
    irn_config = scenarios.default_config(TransportKind.IRN, pfc_enabled=False,
                                          num_flows=80, seed=2)
    roce_config = scenarios.default_config(TransportKind.ROCE, pfc_enabled=True,
                                           num_flows=80, seed=2)

    def run_both():
        return _run_with_spray(irn_config), _run_with_spray(roce_config)

    (irn_done, irn_rtx, irn_collector), (roce_done, roce_rtx, _) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    print("\n=== Ablation: per-packet spraying (packet reordering) ===")
    print(f"IRN  (no PFC): completed={irn_done:.0%} retransmissions={irn_rtx}")
    print(f"RoCE (PFC):    completed={roce_done:.0%} retransmissions={roce_rtx}")

    # IRN tolerates reordering: every flow completes and spurious
    # retransmissions stay far below go-back-N's redundant resends.
    assert irn_done == 1.0
    assert roce_rtx > irn_rtx
