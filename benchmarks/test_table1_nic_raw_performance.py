"""Table 1: raw iWARP vs RoCE NIC performance for 64B Writes on one queue pair.

Paper measurement: the iWARP NIC shows ~3x the latency (2.89 us vs 0.94 us)
and ~4.5x lower message rate (3.24 Mpps vs 14.7 Mpps) than the RoCE NIC.  The
pipeline model regenerates the same shape and adds the IRN row §6.2 argues
for (RoCE-like message rate with nanoseconds of added latency).
"""

import pytest

from repro.hw.nic_model import raw_performance_table


def test_table1_raw_nic_performance(benchmark):
    table = benchmark.pedantic(raw_performance_table, rounds=1, iterations=1)

    print("\n=== Table 1: 64B RDMA Write raw performance ===")
    print(f"{'NIC':<32} {'throughput (Mpps)':>18} {'latency (us)':>13}")
    for name, perf in table.items():
        print(f"{name:<32} {perf.message_rate_mpps:>18.2f} {perf.latency_us:>13.2f}")

    iwarp = table["Chelsio T-580-CR (iWARP)"]
    roce = table["Mellanox MCX416A-BCAT (RoCE)"]
    irn = table["IRN (RoCE + bitmap logic)"]
    # Paper's shape: iWARP ~3x latency, ~4x lower message rate.
    assert iwarp.latency_us / roce.latency_us == pytest.approx(3.0, rel=0.35)
    assert roce.message_rate_mpps / iwarp.message_rate_mpps == pytest.approx(4.5, rel=0.35)
    # IRN keeps RoCE's message rate (§6.2: the bitmap logic is not the bottleneck).
    assert irn.message_rate_mpps == pytest.approx(roce.message_rate_mpps, rel=0.05)
