"""Table 8: sensitivity of IRN to over-estimating RTO_high.

Paper result: increasing RTO_high to 2x and 4x its ideal value changes the
results only marginally -- IRN is not sensitive to the exact timeout value.
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, print_ratio_rows, run_scenarios


def test_table8_rto_high_sweep(benchmark):
    base = scenarios.default_config().effective_rto_high_s()
    table = scenarios.table8_configs(rto_high_values_s=(base, 2 * base, 4 * base),
                                     num_flows=90, seed=BENCH_SEED)
    flat = {f"{row}|{col}": config for row, cols in table.items() for col, config in cols.items()}
    results = run_scenarios(benchmark, flat)
    rows = {row: {col: results[f"{row}|{col}"] for col in cols} for row, cols in table.items()}
    print_ratio_rows("Table 8: RTO_high sweep", rows)

    irn_fcts = [schemes["IRN"].summary.avg_fct for schemes in rows.values()]
    # IRN's average FCT varies by well under 2x across a 4x RTO_high range.
    assert max(irn_fcts) <= 2.0 * min(irn_fcts)
    for schemes in rows.values():
        assert schemes["IRN"].completion_fraction() == 1.0
