"""Table 8: sensitivity of IRN to over-estimating RTO_high.

Paper result: increasing RTO_high to 2x and 4x its ideal value changes the
results only marginally -- IRN is not sensitive to the exact timeout value.

Each (row, scheme) cell runs over the spec's three-seed replica axis; the
robustness assertion compares :func:`aggregate_rows` means across rows.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    aggregate_by_scheme,
    print_ratio_rows,
    run_scenarios,
)

FLOWS = 90


def test_table8_rto_high_sweep(benchmark):
    base = scenarios.default_config().effective_rto_high_s()
    spec = scenarios.scenario("table8").with_rows(
        {f"{int(value * 1e6)}us": {"rto_high_s": value}
         for value in (base, 2 * base, 4 * base)}
    )
    table = spec.tables(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))

    rows = {
        row: {col: results[f"{row}|{col} [seed={spec.seeds[0]}]"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 8: RTO_high sweep (seed 1)", rows)

    aggregates = aggregate_by_scheme(spec.configs(num_flows=FLOWS), results)
    irn_fcts = []
    for row in table:
        record = aggregates[f"{row}|IRN"]
        assert record["replicas"] == len(spec.seeds), row
        assert record["num_flows_total"] == FLOWS * len(spec.seeds), row
        irn_fcts.append(record["avg_fct_s_mean"])
    # IRN's seed-averaged FCT varies by well under 2x across a 4x RTO_high
    # range.
    assert max(irn_fcts) <= 2.0 * min(irn_fcts)
