"""Figure 3: impact of disabling PFC with RoCE.

Paper result: RoCE degrades by 1.5-3x without PFC because go-back-N loss
recovery wastes bandwidth on redundant retransmissions.

Each scheme runs over a three-seed axis in one sweep; the assertions are on
:func:`aggregate_rows` means and summed counters, paper-style, rather than a
single seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig3_disabling_pfc_with_roce(benchmark):
    # Run at 90% load: the cost of go-back-N on a lossy fabric grows with
    # congestion, which is exactly the regime the paper's claim is about.
    base = scenarios.fig3_configs(num_flows=150, target_load=0.9)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 3: RoCE with vs without PFC, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    with_pfc = aggregates["RoCE (with PFC)"]
    without_pfc = aggregates["RoCE without PFC"]
    for record in (with_pfc, without_pfc):
        assert record["replicas"] == len(BENCH_SEEDS)
        assert record["seeds"] == sorted(BENCH_SEEDS)
    # RoCE requires PFC: completion times degrade clearly without it -- on
    # seed-averaged metrics.  (The average slowdown, dominated by
    # single-packet RPCs, degrades less at benchmark scale.)
    assert without_pfc["avg_fct_s_mean"] > 1.2 * with_pfc["avg_fct_s_mean"]
    assert without_pfc["tail_fct_s_mean"] > 1.2 * with_pfc["tail_fct_s_mean"]
    assert without_pfc["avg_slowdown_mean"] > with_pfc["avg_slowdown_mean"]
    # The mechanism: redundant go-back-N retransmissions on a lossy fabric,
    # across every replica.
    assert (without_pfc["retransmissions_total"]
            > 10 * max(1, with_pfc["retransmissions_total"]))
