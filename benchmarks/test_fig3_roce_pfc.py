"""Figure 3: impact of disabling PFC with RoCE.

Paper result: RoCE degrades by 1.5-3x without PFC because go-back-N loss
recovery wastes bandwidth on redundant retransmissions.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig3_disabling_pfc_with_roce(benchmark):
    # Run at 90% load: the cost of go-back-N on a lossy fabric grows with
    # congestion, which is exactly the regime the paper's claim is about.
    configs = scenarios.fig3_configs(num_flows=150, seed=BENCH_SEED, target_load=0.9)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 3: RoCE with vs without PFC", results)
    assert_all_completed(results)

    with_pfc = results["RoCE (with PFC)"]
    without_pfc = results["RoCE without PFC"]
    # RoCE requires PFC: completion times degrade clearly without it.  (The
    # average slowdown, dominated by single-packet RPCs, degrades less at
    # benchmark scale -- see EXPERIMENTS.md.)
    assert without_pfc.summary.avg_fct > 1.2 * with_pfc.summary.avg_fct
    assert without_pfc.summary.tail_fct > 1.2 * with_pfc.summary.tail_fct
    assert without_pfc.summary.avg_slowdown > with_pfc.summary.avg_slowdown
    # The mechanism: redundant go-back-N retransmissions on a lossy fabric.
    assert without_pfc.retransmissions > 10 * max(1, with_pfc.retransmissions)
