"""Figure 10: Resilient RoCE (RoCE + DCQCN without PFC) vs plain IRN.

Paper result: IRN without any congestion control beats Resilient RoCE because
its loss recovery and BDP-FC handle the drops DCQCN fails to prevent under
dynamic traffic.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig10_resilient_roce_vs_irn(benchmark):
    configs = scenarios.fig10_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 10: Resilient RoCE vs IRN", results)
    assert_all_completed(results)

    irn = results["IRN"]
    resilient = results["Resilient RoCE"]
    # IRN (no CC, no PFC) at least matches Resilient RoCE on every metric.
    assert irn.summary.avg_slowdown <= 1.1 * resilient.summary.avg_slowdown
    assert irn.summary.avg_fct <= 1.1 * resilient.summary.avg_fct
    # Mechanism: when DCQCN fails to avoid drops, go-back-N pays much more.
    assert irn.retransmissions <= resilient.retransmissions or resilient.packets_dropped == 0
