"""Figure 10: Resilient RoCE (RoCE + DCQCN without PFC) vs plain IRN.

Paper result: IRN without any congestion control beats Resilient RoCE because
its loss recovery and BDP-FC handle the drops DCQCN fails to prevent under
dynamic traffic.

Each scheme runs over a three-seed axis in one sweep; the assertions are on
:func:`aggregate_rows` means with replica counts.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig10_resilient_roce_vs_irn(benchmark):
    base = scenarios.fig10_configs(num_flows=BENCH_FLOWS)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 10: Resilient RoCE vs IRN, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    irn = aggregates["IRN"]
    resilient = aggregates["Resilient RoCE"]
    for record in (irn, resilient):
        assert record["replicas"] == len(BENCH_SEEDS)
        assert record["seeds"] == sorted(BENCH_SEEDS)
    # IRN (no CC, no PFC) at least matches Resilient RoCE on the
    # seed-averaged metrics.
    assert irn["avg_slowdown_mean"] <= 1.1 * resilient["avg_slowdown_mean"]
    assert irn["avg_fct_s_mean"] <= 1.1 * resilient["avg_fct_s_mean"]
    # Mechanism: when DCQCN fails to avoid drops, go-back-N pays much more.
    assert (
        irn["retransmissions_total"] <= resilient["retransmissions_total"]
        or resilient["packets_dropped_total"] == 0
    )
