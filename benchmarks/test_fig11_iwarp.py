"""Figure 11: iWARP's full TCP stack vs IRN.

Paper result: IRN's absence of slow start (BDP-FC instead) gives 21% smaller
average slowdown with comparable FCTs; adding TCP's AIMD to IRN improves it
further (44% smaller slowdown, 11% smaller FCT than iWARP).

Each scheme runs over a three-seed axis; the ordering assertions are on
:func:`aggregate_rows` means rather than a single seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig11_iwarp_vs_irn(benchmark):
    base = scenarios.fig11_configs(num_flows=BENCH_FLOWS)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 11: iWARP (TCP stack) vs IRN, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    iwarp = aggregates["iWARP"]
    irn = aggregates["IRN"]
    irn_aimd = aggregates["IRN + AIMD"]
    assert iwarp["replicas"] == len(BENCH_SEEDS)
    # IRN (no slow start) has lower seed-averaged slowdown than the TCP stack.
    assert irn["avg_slowdown_mean"] <= iwarp["avg_slowdown_mean"]
    # Adding AIMD on top of IRN does not make it worse than iWARP either.
    assert irn_aimd["avg_slowdown_mean"] <= 1.1 * iwarp["avg_slowdown_mean"]
