"""Figure 11: iWARP's full TCP stack vs IRN.

Paper result: IRN's absence of slow start (BDP-FC instead) gives 21% smaller
average slowdown with comparable FCTs; adding TCP's AIMD to IRN improves it
further (44% smaller slowdown, 11% smaller FCT than iWARP).
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig11_iwarp_vs_irn(benchmark):
    configs = scenarios.fig11_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 11: iWARP (TCP stack) vs IRN", results)
    assert_all_completed(results)

    iwarp = results["iWARP"]
    irn = results["IRN"]
    irn_aimd = results["IRN + AIMD"]
    # IRN (no slow start) has lower average slowdown than the TCP stack.
    assert irn.summary.avg_slowdown <= iwarp.summary.avg_slowdown
    # Adding AIMD on top of IRN does not make it worse than iWARP either.
    assert irn_aimd.summary.avg_slowdown <= 1.1 * iwarp.summary.avg_slowdown
