"""Table 6: robustness of the basic results to the workload pattern.

Paper result: the key trends hold both for the default heavy-tailed RPC +
storage mix and for a uniform medium/large-flow storage workload.
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, print_ratio_rows, run_scenarios


def test_table6_workload_sweep(benchmark):
    table = scenarios.table6_configs(num_flows=80, seed=BENCH_SEED)
    flat = {f"{row}|{col}": config for row, cols in table.items() for col, config in cols.items()}
    results = run_scenarios(benchmark, flat)
    rows = {row: {col: results[f"{row}|{col}"] for col in cols} for row, cols in table.items()}
    print_ratio_rows("Table 6: workload pattern sweep", rows)

    for row, schemes in rows.items():
        irn = schemes["IRN"]
        roce = schemes["RoCE+PFC"]
        assert irn.completion_fraction() == 1.0, row
        assert irn.summary.avg_slowdown <= 1.3 * roce.summary.avg_slowdown, row
    # The uniform workload has no single-packet RPCs, so its average FCT is
    # dominated by large flows and is much higher than the heavy-tailed mix.
    assert (rows["Uniform"]["IRN"].summary.avg_fct
            > rows["Heavy-tailed"]["IRN"].summary.avg_fct)
