"""Table 6: robustness of the basic results to the workload pattern.

Paper result: the key trends hold both for the default heavy-tailed RPC +
storage mix and for a uniform medium/large-flow storage workload.

Each (row, scheme) cell runs over the spec's three-seed replica axis; the
ordering assertions are on :func:`aggregate_rows` means with 95% confidence
half-widths, paper-style, rather than a single seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    aggregate_by_scheme,
    assert_all_completed,
    print_ratio_rows,
    run_scenarios,
)

FLOWS = 80


def test_table6_workload_sweep(benchmark):
    spec = scenarios.scenario("table6")
    table = spec.tables(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))
    assert_all_completed(results)

    # The familiar ratio table, from the first replica of each cell.
    rows = {
        row: {col: results[f"{row}|{col} [seed={spec.seeds[0]}]"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 6: workload pattern sweep (seed 1)", rows)

    aggregates = aggregate_by_scheme(spec.configs(num_flows=FLOWS), results)
    for row in table:
        irn = aggregates[f"{row}|IRN"]
        roce = aggregates[f"{row}|RoCE+PFC"]
        assert irn["replicas"] == len(spec.seeds), row
        assert irn["seeds"] == sorted(spec.seeds), row
        # Confidence intervals exist (non-degenerate with 3 replicas).
        assert irn["avg_slowdown_ci95"] >= 0.0
        assert irn["avg_slowdown_stderr"] >= 0.0
        # IRN without PFC stays at least competitive with RoCE+PFC on
        # seed-averaged slowdown under both workload patterns.
        assert irn["avg_slowdown_mean"] <= 1.3 * roce["avg_slowdown_mean"], row
    # The uniform workload has no single-packet RPCs, so its average FCT is
    # dominated by large flows and is much higher than the heavy-tailed mix
    # -- on seed-averaged means.
    assert (aggregates["Uniform|IRN"]["avg_fct_s_mean"]
            > aggregates["Heavy-tailed|IRN"]["avg_fct_s_mean"])
