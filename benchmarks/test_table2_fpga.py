"""Table 2: FPGA synthesis of IRN's packet-processing modules.

Paper result (Kintex UltraScale KU060, 128-bit bitmaps): each module uses
<1% FFs and <2% LUTs (1.35% / 4.01% total), adds at most 16.5 ns of latency,
and the bottleneck module sustains 45.45 Mpps -- enough for 372 Gbps of
MTU-sized packets.  Doubling the bitmaps for 100 Gbps roughly doubles usage.
In addition to the analytical model, this benchmark drives the bit-accurate
packet-processing modules with a synthetic event trace to measure the
software cost of the bitmap datapath.
"""

import pytest

from repro.hw.fpga_model import FpgaSynthesisModel
from repro.hw.packet_modules import (
    QpContext,
    ReceiveAckModule,
    ReceiveDataModule,
    TxFreeModule,
)


def _drive_modules(events: int = 2000) -> QpContext:
    """Run a synthetic requester/responder event trace through the modules."""
    ctx = QpContext(bdp_cap=128)
    receive_data = ReceiveDataModule()
    tx_free = TxFreeModule()
    receive_ack = ReceiveAckModule()
    for i in range(events):
        tx_free.process(ctx, new_packets_available=True)
        # Every 7th packet is "lost": deliver it out of order later.
        if i % 7 == 6:
            receive_data.process(ctx, psn=ctx.expected_psn + 1, last_of_message=(i % 3 == 0))
            receive_ack.process(ctx, cumulative_ack=ctx.snd_una, sack_psn=ctx.snd_una + 1,
                                is_nack=True)
        else:
            receive_data.process(ctx, psn=ctx.expected_psn, last_of_message=(i % 3 == 0))
            receive_ack.process(ctx, cumulative_ack=min(ctx.snd_nxt, ctx.snd_una + 1),
                                sack_psn=None, is_nack=False)
    return ctx


def test_table2_fpga_synthesis_estimates(benchmark):
    ctx = benchmark.pedantic(_drive_modules, rounds=1, iterations=1)
    assert ctx.find_first_zero_ops > 0 and ctx.shift_ops > 0

    print("\n=== Table 2: packet-processing module estimates ===")
    for bitmap_bits, label in ((128, "40 Gbps"), (320, "100 Gbps")):
        model = FpgaSynthesisModel(bitmap_bits)
        print(f"\n{label} ({bitmap_bits}-bit bitmaps):")
        print(f"{'module':<14} {'FF %':>7} {'LUT %':>7} {'latency (ns)':>13} {'tput (Mpps)':>12}")
        for row in model.table():
            print(f"{row.name:<14} {row.flip_flop_fraction * 100:>7.2f} "
                  f"{row.lut_fraction * 100:>7.2f} {row.latency_ns:>13.1f} "
                  f"{row.throughput_mpps:>12.1f}")
        totals = model.totals()
        print(f"{'TOTAL':<14} {totals.flip_flop_fraction * 100:>7.2f} "
              f"{totals.lut_fraction * 100:>7.2f} {'':>13} {totals.throughput_mpps:>12.1f}")

    model_40g = FpgaSynthesisModel(128)
    totals = model_40g.totals()
    # Paper's summary row: 1.35% FF, 4.01% LUT, 45.45 Mpps bottleneck.
    assert totals.flip_flop_fraction * 100 == pytest.approx(1.35, abs=0.2)
    assert totals.lut_fraction * 100 == pytest.approx(4.01, abs=0.5)
    assert totals.throughput_mpps == pytest.approx(45.45, rel=0.02)
    # 45 Mpps of 1KB packets is 372 Gbps -- far above both NIC line rates.
    assert totals.sustains_line_rate(40e9)
    assert totals.sustains_line_rate(100e9)
    # Per-module limits from the paper: <1% FF, <2% LUT, <=16.5 ns latency.
    for row in model_40g.table():
        assert row.flip_flop_fraction < 0.01
        assert row.lut_fraction < 0.02
        assert row.latency_ns <= 16.5 + 1e-9
