"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
fabric (see README.md for the benchmark-to-figure map and the scaling
rationale) and prints the rows in the same shape the paper reports, so
paper-vs-measured comparisons can be read side by side.  ``pytest-benchmark``
measures the wall-clock cost of each scenario; simulations run exactly once
(rounds=1) because a single run is already seconds long and deterministic for
its seed.

Scenarios execute through :func:`repro.experiments.sweep.run_sweep`, which
fans the independent cells of a figure out across worker processes and hands
back flat :class:`ResultRow` records -- including the quantile digests that
distributional benchmarks (Figure 8's tail CDF) assert against, so no
benchmark needs the heavyweight in-process path anymore.  Set
``REPRO_BENCH_WORKERS=1`` to force the serial path (results are bit-identical
either way).  Benchmarks pass no cache by default -- the wall-clock
measurement must time real simulator runs -- but ``REPRO_BENCH_CACHE=<dir>``
opts into the code-aware disk cache for iterative local analysis.

Table and CDF rendering lives in :mod:`repro.metrics.report`; the wrappers
here only add ``print`` so ``pytest -s`` shows the tables.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Optional, Sequence, Union

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultRow
from repro.experiments.runner import ExperimentResult
from repro.experiments.sweep import aggregate_rows, run_sweep
from repro.metrics.report import format_metric_table, format_ratio_table

#: The printing/assertion helpers only touch the surface the two result
#: types share (summary, drop_rate, fabric counters, completion_fraction).
AnyResult = Union[ResultRow, ExperimentResult]

#: Flow count used by benchmark scenarios (smaller than the library default
#: so the full suite of ~20 benchmarks finishes in minutes).
BENCH_FLOWS = 120
#: Seed axis shared by every simulation benchmark.  Flat-scenario benchmarks
#: expand it with :func:`seed_replicas`; row/table benchmarks take the same
#: axis from the spec-level ``seeds`` field (``scenario(name).seeds``) via
#: ``spec.replicated()`` -- every registered scenario now carries (1, 2, 3).
BENCH_SEEDS = (1, 2, 3)


def _bench_workers() -> Optional[int]:
    value = os.environ.get("REPRO_BENCH_WORKERS")
    return int(value) if value else None


def _bench_cache() -> Optional[str]:
    return os.environ.get("REPRO_BENCH_CACHE") or None


def run_scenarios(
    benchmark,
    configs: Dict[str, ExperimentConfig],
) -> Dict[str, ResultRow]:
    """Sweep every config once inside the benchmark timer; flat rows out."""

    def _run_all() -> Dict[str, ResultRow]:
        return dict(run_sweep(configs, workers=_bench_workers(), cache=_bench_cache()).rows)

    return benchmark.pedantic(_run_all, rounds=1, iterations=1)


def seed_replicas(
    configs: Dict[str, ExperimentConfig],
    seeds: Sequence[int] = BENCH_SEEDS,
) -> Dict[str, ExperimentConfig]:
    """Expand scenario configs over a seed axis (labels stay unique).

    Uses the same ``replica_label`` format as ``ScenarioSpec.replicated``,
    so benchmarks indexing either path's results by label agree.
    """
    from repro.experiments.spec import replica_label

    return {
        replica_label(label, seed): config.with_overrides(seed=seed)
        for label, config in configs.items()
        for seed in seeds
    }


def aggregate_by_scheme(
    base_configs: Dict[str, ExperimentConfig],
    rows: Mapping[str, ResultRow],
) -> Dict[str, Dict]:
    """Fold seed replicas back into one aggregate record per scenario label.

    Replicas share their scenario's config ``name`` (the seed override does
    not change it), so grouping on ``name`` and mapping back through
    ``base_configs`` yields paper-style means with replica counts under the
    original human-readable labels.
    """
    by_name = {record["name"]: record for record in aggregate_rows(rows.values(), by=("name",))}
    return {label: by_name[config.name] for label, config in base_configs.items()}


def print_metric_table(title: str, results: Dict[str, AnyResult]) -> None:
    """Print the paper's three metrics for each scheme."""
    print()
    print(format_metric_table(title, results))


def print_ratio_rows(
    title: str,
    rows: Dict[str, Dict[str, AnyResult]],
) -> None:
    """Print appendix-style rows: IRN absolute values plus the two ratios."""
    print()
    print(format_ratio_table(title, rows))


def assert_all_completed(results: Dict[str, AnyResult]) -> None:
    """Every injected flow must have finished within the simulated horizon."""
    for label, result in results.items():
        assert result.completion_fraction() == pytest.approx(1.0), (
            f"{label}: only {result.completion_fraction():.0%} of flows completed"
        )
