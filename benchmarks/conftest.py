"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
fabric (see DESIGN.md for the scaling rationale) and prints the rows in the
same shape the paper reports, so EXPERIMENTS.md can record paper-vs-measured
side by side.  ``pytest-benchmark`` measures the wall-clock cost of each
scenario; simulations run exactly once (rounds=1) because a single run is
already seconds long and deterministic for its seed.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment

#: Flow count used by benchmark scenarios (smaller than the library default
#: so the full suite of ~20 benchmarks finishes in minutes).
BENCH_FLOWS = 120
#: Seed shared by all benchmark scenarios.
BENCH_SEED = 1


def run_scenarios(
    benchmark,
    configs: Dict[str, ExperimentConfig],
) -> Dict[str, ExperimentResult]:
    """Run every config once inside the benchmark timer and return results."""

    def _run_all() -> Dict[str, ExperimentResult]:
        return {label: run_experiment(config) for label, config in configs.items()}

    return benchmark.pedantic(_run_all, rounds=1, iterations=1)


def print_metric_table(title: str, results: Dict[str, ExperimentResult]) -> None:
    """Print the paper's three metrics for each scheme."""
    print(f"\n=== {title} ===")
    print(f"{'scheme':<34} {'avg slowdown':>13} {'avg FCT (ms)':>13} {'99% FCT (ms)':>13} "
          f"{'drop %':>7} {'pauses':>7} {'rtx':>7}")
    for label, result in results.items():
        summary = result.summary
        print(f"{label:<34} {summary.avg_slowdown:>13.2f} {summary.avg_fct * 1e3:>13.4f} "
              f"{summary.tail_fct * 1e3:>13.4f} {result.drop_rate * 100:>7.2f} "
              f"{result.pause_frames:>7d} {result.retransmissions:>7d}")


def print_ratio_rows(
    title: str,
    rows: Dict[str, Dict[str, ExperimentResult]],
) -> None:
    """Print appendix-style rows: IRN absolute values plus the two ratios."""
    print(f"\n=== {title} ===")
    print(f"{'row':<22} {'metric':<14} {'IRN':>10} {'IRN/IRN+PFC':>13} {'IRN/RoCE+PFC':>13}")
    for row_label, schemes in rows.items():
        irn = schemes["IRN"].summary
        irn_pfc = schemes["IRN+PFC"].summary
        roce_pfc = schemes["RoCE+PFC"].summary
        metrics = [
            ("avg slowdown", irn.avg_slowdown, irn_pfc.avg_slowdown, roce_pfc.avg_slowdown),
            ("avg FCT", irn.avg_fct, irn_pfc.avg_fct, roce_pfc.avg_fct),
            ("99% FCT", irn.tail_fct, irn_pfc.tail_fct, roce_pfc.tail_fct),
        ]
        for name, value, versus_pfc, versus_roce in metrics:
            ratio_pfc = value / versus_pfc if versus_pfc else float("nan")
            ratio_roce = value / versus_roce if versus_roce else float("nan")
            print(f"{row_label:<22} {name:<14} {value:>10.4f} {ratio_pfc:>13.3f} {ratio_roce:>13.3f}")


def assert_all_completed(results: Dict[str, ExperimentResult]) -> None:
    """Every injected flow must have finished within the simulated horizon."""
    for label, result in results.items():
        assert result.completion_fraction() == pytest.approx(1.0), (
            f"{label}: only {result.completion_fraction():.0%} of flows completed"
        )
