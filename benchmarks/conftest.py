"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
fabric (see README.md for the benchmark-to-figure map and the scaling
rationale) and prints the rows in the same shape the paper reports, so
paper-vs-measured comparisons can be read side by side.  ``pytest-benchmark`` measures the wall-clock cost of each
scenario; simulations run exactly once (rounds=1) because a single run is
already seconds long and deterministic for its seed.

Scenarios execute through :func:`repro.experiments.sweep.run_sweep`, which
fans the independent cells of a figure out across worker processes and hands
back flat :class:`ResultRow` records.  Set ``REPRO_BENCH_WORKERS=1`` to force
the serial path (results are bit-identical either way).  Benchmarks never
pass a cache: the wall-clock measurement must time real simulator runs.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultRow
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.sweep import run_sweep

#: The printing/assertion helpers only touch the surface the two result
#: types share (summary, drop_rate, fabric counters, completion_fraction).
AnyResult = Union[ResultRow, ExperimentResult]

#: Flow count used by benchmark scenarios (smaller than the library default
#: so the full suite of ~20 benchmarks finishes in minutes).
BENCH_FLOWS = 120
#: Seed shared by all benchmark scenarios.
BENCH_SEED = 1


def _bench_workers() -> Optional[int]:
    value = os.environ.get("REPRO_BENCH_WORKERS")
    return int(value) if value else None


def run_scenarios(
    benchmark,
    configs: Dict[str, ExperimentConfig],
) -> Dict[str, ResultRow]:
    """Sweep every config once inside the benchmark timer; flat rows out."""

    def _run_all() -> Dict[str, ResultRow]:
        return dict(run_sweep(configs, workers=_bench_workers()).rows)

    return benchmark.pedantic(_run_all, rounds=1, iterations=1)


def run_scenarios_full(
    benchmark,
    configs: Dict[str, ExperimentConfig],
) -> Dict[str, ExperimentResult]:
    """Serial in-process variant keeping the heavyweight results.

    For benchmarks that need the :class:`MetricsCollector` afterwards (e.g.
    Figure 8's per-flow latency CDF), which a :class:`ResultRow` drops.
    """

    def _run_all() -> Dict[str, ExperimentResult]:
        return {label: run_experiment(config) for label, config in configs.items()}

    return benchmark.pedantic(_run_all, rounds=1, iterations=1)


def print_metric_table(title: str, results: Dict[str, AnyResult]) -> None:
    """Print the paper's three metrics for each scheme."""
    print(f"\n=== {title} ===")
    print(f"{'scheme':<34} {'avg slowdown':>13} {'avg FCT (ms)':>13} {'99% FCT (ms)':>13} "
          f"{'drop %':>7} {'pauses':>7} {'rtx':>7}")
    for label, result in results.items():
        summary = result.summary
        print(f"{label:<34} {summary.avg_slowdown:>13.2f} {summary.avg_fct * 1e3:>13.4f} "
              f"{summary.tail_fct * 1e3:>13.4f} {result.drop_rate * 100:>7.2f} "
              f"{result.pause_frames:>7d} {result.retransmissions:>7d}")


def print_ratio_rows(
    title: str,
    rows: Dict[str, Dict[str, AnyResult]],
) -> None:
    """Print appendix-style rows: IRN absolute values plus the two ratios."""
    print(f"\n=== {title} ===")
    print(f"{'row':<22} {'metric':<14} {'IRN':>10} {'IRN/IRN+PFC':>13} {'IRN/RoCE+PFC':>13}")
    for row_label, schemes in rows.items():
        irn = schemes["IRN"].summary
        irn_pfc = schemes["IRN+PFC"].summary
        roce_pfc = schemes["RoCE+PFC"].summary
        metrics = [
            ("avg slowdown", irn.avg_slowdown, irn_pfc.avg_slowdown, roce_pfc.avg_slowdown),
            ("avg FCT", irn.avg_fct, irn_pfc.avg_fct, roce_pfc.avg_fct),
            ("99% FCT", irn.tail_fct, irn_pfc.tail_fct, roce_pfc.tail_fct),
        ]
        for name, value, versus_pfc, versus_roce in metrics:
            ratio_pfc = value / versus_pfc if versus_pfc else float("nan")
            ratio_roce = value / versus_roce if versus_roce else float("nan")
            print(f"{row_label:<22} {name:<14} {value:>10.4f} {ratio_pfc:>13.3f} {ratio_roce:>13.3f}")


def assert_all_completed(results: Dict[str, AnyResult]) -> None:
    """Every injected flow must have finished within the simulated horizon."""
    for label, result in results.items():
        assert result.completion_fraction() == pytest.approx(1.0), (
            f"{label}: only {result.completion_fraction():.0%} of flows completed"
        )
