"""Figure 6: disabling PFC with RoCE when Timely or DCQCN is used.

Paper result: unlike IRN, RoCE still needs PFC even with congestion control --
enabling PFC improves RoCE by 1.35-3.5x.  (RoCE + DCQCN without PFC is
Resilient RoCE, compared directly against IRN in Figure 10.)

Each scheme runs over a three-seed axis; the fabric-counter assertions use
:func:`aggregate_rows` totals over every replica.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig6_pfc_with_roce_under_congestion_control(benchmark):
    base = scenarios.fig6_configs(num_flows=100, target_load=0.9)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 6: RoCE +/- PFC with Timely / DCQCN, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    for cc in ("timely", "dcqcn"):
        with_pfc = aggregates[f"RoCE with PFC +{cc}"]
        without_pfc = aggregates[f"RoCE without PFC +{cc}"]
        assert with_pfc["replicas"] == len(BENCH_SEEDS)
        # The mechanism behind the paper's claim that RoCE still needs PFC:
        # the lossless fabric absorbs congestion with pauses (never drops),
        # while the lossy fabric exposes go-back-N to drops and redundant
        # retransmissions whenever congestion control fails to prevent them.
        # (At benchmark scale Timely/DCQCN often avoid drops entirely, which
        # attenuates the FCT gap -- see EXPERIMENTS.md.)  Asserted across
        # every replica via summed counters.
        assert with_pfc["packets_dropped_total"] == 0
        assert without_pfc["pause_frames_total"] == 0
        assert (without_pfc["packets_dropped_total"]
                >= with_pfc["packets_dropped_total"])
        assert (without_pfc["retransmissions_total"]
                >= with_pfc["retransmissions_total"])
