"""Figure 6: disabling PFC with RoCE when Timely or DCQCN is used.

Paper result: unlike IRN, RoCE still needs PFC even with congestion control --
enabling PFC improves RoCE by 1.35-3.5x.  (RoCE + DCQCN without PFC is
Resilient RoCE, compared directly against IRN in Figure 10.)
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig6_pfc_with_roce_under_congestion_control(benchmark):
    configs = scenarios.fig6_configs(num_flows=100, seed=BENCH_SEED, target_load=0.9)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 6: RoCE +/- PFC with Timely / DCQCN", results)
    assert_all_completed(results)

    for cc in ("timely", "dcqcn"):
        with_pfc = results[f"RoCE with PFC +{cc}"]
        without_pfc = results[f"RoCE without PFC +{cc}"]
        # The mechanism behind the paper's claim that RoCE still needs PFC:
        # the lossless fabric absorbs congestion with pauses (never drops),
        # while the lossy fabric exposes go-back-N to drops and redundant
        # retransmissions whenever congestion control fails to prevent them.
        # (At benchmark scale Timely/DCQCN often avoid drops entirely, which
        # attenuates the FCT gap -- see EXPERIMENTS.md.)
        assert with_pfc.packets_dropped == 0
        assert without_pfc.pause_frames == 0
        assert without_pfc.packets_dropped >= with_pfc.packets_dropped
        assert without_pfc.retransmissions >= with_pfc.retransmissions
