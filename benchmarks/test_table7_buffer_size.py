"""Table 7: robustness of the basic results to the per-port buffer size.

Paper result: with smaller buffers PFC pauses more and congestion spreading
worsens, so the penalty of enabling PFC with IRN grows; with larger buffers
the lossy/lossless gap shrinks.
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, print_ratio_rows, run_scenarios


def test_table7_buffer_size_sweep(benchmark):
    table = scenarios.table7_configs(buffer_bytes=(15_000, 30_000, 60_000),
                                     num_flows=90, seed=BENCH_SEED)
    flat = {f"{row}|{col}": config for row, cols in table.items() for col, config in cols.items()}
    results = run_scenarios(benchmark, flat)
    rows = {row: {col: results[f"{row}|{col}"] for col in cols} for row, cols in table.items()}
    print_ratio_rows("Table 7: per-port buffer size sweep", rows)

    pauses_by_buffer = []
    for row, schemes in rows.items():
        assert schemes["IRN"].completion_fraction() == 1.0, row
        pauses_by_buffer.append(schemes["RoCE+PFC"].pause_frames)
    # Smaller buffers must produce at least as many pause frames as larger ones.
    assert pauses_by_buffer[0] >= pauses_by_buffer[-1]
