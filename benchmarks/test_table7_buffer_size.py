"""Table 7: robustness of the basic results to the per-port buffer size.

Paper result: with smaller buffers PFC pauses more and congestion spreading
worsens, so the penalty of enabling PFC with IRN grows; with larger buffers
the lossy/lossless gap shrinks.

Each (row, scheme) cell runs over the spec's three-seed replica axis; the
pause-count monotonicity is asserted on totals over every replica.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    aggregate_by_scheme,
    print_ratio_rows,
    run_scenarios,
)

FLOWS = 90
BUFFER_BYTES = (15_000, 30_000, 60_000)


def test_table7_buffer_size_sweep(benchmark):
    spec = scenarios.scenario("table7").with_rows(
        {f"{size // 1000}KB": {"buffer_bytes_per_port": size} for size in BUFFER_BYTES}
    )
    table = spec.tables(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))

    rows = {
        row: {col: results[f"{row}|{col} [seed={spec.seeds[0]}]"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 7: per-port buffer size sweep (seed 1)", rows)

    aggregates = aggregate_by_scheme(spec.configs(num_flows=FLOWS), results)
    pauses_by_buffer = []
    for row in table:
        irn = aggregates[f"{row}|IRN"]
        assert irn["replicas"] == len(spec.seeds), row
        # IRN keeps finishing every flow at each buffer size, in all replicas.
        assert irn["num_flows_total"] == FLOWS * len(spec.seeds), row
        pauses_by_buffer.append(aggregates[f"{row}|RoCE+PFC"]["pause_frames_total"])
    # Smaller buffers must produce at least as many pause frames as larger
    # ones -- summed over every replica.
    assert pauses_by_buffer[0] >= pauses_by_buffer[-1]
