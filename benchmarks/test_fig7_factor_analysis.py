"""Figure 7: factor analysis of IRN's two changes (plus the no-SACK ablation).

Paper result: replacing SACK recovery with go-back-N hurts more than removing
BDP-FC; both variants are worse than full IRN.  §4.3(2) additionally shows
selective retransmission without SACK state degrades by up to 75% when there
are multiple losses in a window.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig7_factor_analysis(benchmark):
    configs = scenarios.fig7_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    configs.update(scenarios.no_sack_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED))
    # The plain-IRN config appears in both sets; the dict merge keeps one copy.
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 7: IRN factor analysis", results)
    assert_all_completed(results)

    irn = results["IRN"]
    gbn = results["IRN with Go-Back-N"]
    no_bdpfc = results["IRN without BDP-FC"]
    no_sack = results["IRN without SACK"]

    # Both ablations hurt relative to full IRN (allowing a little noise).
    assert gbn.summary.avg_fct >= 0.95 * irn.summary.avg_fct
    assert no_bdpfc.summary.avg_fct >= 0.95 * irn.summary.avg_fct
    # The mechanisms behind the gaps:
    assert gbn.retransmissions > irn.retransmissions          # redundant resends
    assert no_bdpfc.packets_dropped >= irn.packets_dropped    # extra queueing/drops
    assert no_sack.retransmissions >= irn.retransmissions
