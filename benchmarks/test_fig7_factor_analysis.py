"""Figure 7: factor analysis of IRN's two changes (plus the no-SACK ablation).

Paper result: replacing SACK recovery with go-back-N hurts more than removing
BDP-FC; both variants are worse than full IRN.  §4.3(2) additionally shows
selective retransmission without SACK state degrades by up to 75% when there
are multiple losses in a window.

Each variant runs over a three-seed axis; the mechanism assertions compare
:func:`aggregate_rows` means and counters summed over every replica (loss
counts at benchmark scale are small enough that a single seed's draw can
invert them).
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig7_factor_analysis(benchmark):
    base = scenarios.fig7_configs(num_flows=BENCH_FLOWS)
    base.update(scenarios.no_sack_configs(num_flows=BENCH_FLOWS))
    # The plain-IRN config appears in both sets; the dict merge keeps one copy.
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 7: IRN factor analysis, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    irn = aggregates["IRN"]
    gbn = aggregates["IRN with Go-Back-N"]
    no_bdpfc = aggregates["IRN without BDP-FC"]
    no_sack = aggregates["IRN without SACK"]
    assert irn["replicas"] == len(BENCH_SEEDS)

    # Both ablations hurt relative to full IRN (allowing a little noise) on
    # seed-averaged FCT.
    assert gbn["avg_fct_s_mean"] >= 0.95 * irn["avg_fct_s_mean"]
    assert no_bdpfc["avg_fct_s_mean"] >= 0.95 * irn["avg_fct_s_mean"]
    # The mechanisms behind the gaps, summed over every replica:
    assert gbn["retransmissions_total"] > irn["retransmissions_total"]
    assert no_bdpfc["packets_dropped_total"] >= irn["packets_dropped_total"]
    assert no_sack["retransmissions_total"] >= irn["retransmissions_total"]
