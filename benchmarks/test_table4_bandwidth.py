"""Table 4: robustness of the basic results to the link bandwidth.

Paper result (10/40/100 Gbps): the IRN-vs-RoCE+PFC advantage persists across
bandwidths; higher bandwidths shrink the gap between lossy and lossless IRN
because a drop's recovery round trip becomes relatively more expensive.

Each (row, scheme) cell runs over the spec's three-seed replica axis; the
ordering assertions are on :func:`aggregate_rows` means rather than a single
seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    aggregate_by_scheme,
    assert_all_completed,
    print_ratio_rows,
    run_scenarios,
)

FLOWS = 90
BANDWIDTHS_GBPS = (5, 10, 25)


def test_table4_bandwidth_sweep(benchmark):
    spec = scenarios.scenario("table4").with_rows(
        {f"{int(bw)}Gbps": {"link_bandwidth_bps": bw * 1e9} for bw in BANDWIDTHS_GBPS}
    )
    table = spec.tables(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))
    assert_all_completed(results)

    rows = {
        row: {col: results[f"{row}|{col} [seed={spec.seeds[0]}]"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 4: link bandwidth sweep (seed 1)", rows)

    aggregates = aggregate_by_scheme(spec.configs(num_flows=FLOWS), results)
    for row in table:
        irn = aggregates[f"{row}|IRN"]
        roce_pfc = aggregates[f"{row}|RoCE+PFC"]
        assert irn["replicas"] == len(spec.seeds), row
        assert irn["avg_slowdown_mean"] <= 1.3 * roce_pfc["avg_slowdown_mean"], row
