"""Table 4: robustness of the basic results to the link bandwidth.

Paper result (10/40/100 Gbps): the IRN-vs-RoCE+PFC advantage persists across
bandwidths; higher bandwidths shrink the gap between lossy and lossless IRN
because a drop's recovery round trip becomes relatively more expensive.
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, print_ratio_rows, run_scenarios


def test_table4_bandwidth_sweep(benchmark):
    table = scenarios.table4_configs(bandwidths_gbps=(5, 10, 25), num_flows=90, seed=BENCH_SEED)
    flat = {f"{row}|{col}": config for row, cols in table.items() for col, config in cols.items()}
    results = run_scenarios(benchmark, flat)
    rows = {row: {col: results[f"{row}|{col}"] for col in cols} for row, cols in table.items()}
    print_ratio_rows("Table 4: link bandwidth sweep", rows)

    for row, schemes in rows.items():
        assert schemes["IRN"].completion_fraction() == 1.0, row
        assert (schemes["IRN"].summary.avg_slowdown
                <= 1.3 * schemes["RoCE+PFC"].summary.avg_slowdown), row
