"""Table 5: robustness of the basic results to the fat-tree scale.

Paper result (54/128/250 servers): the trends are unchanged as the fabric
grows.  The benchmark compares k=4 (16 hosts) with the paper's default k=6
(54 hosts) arity.
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, print_ratio_rows, run_scenarios


def test_table5_topology_scale_sweep(benchmark):
    table = scenarios.table5_configs(arities=(4, 6), num_flows=80, seed=BENCH_SEED)
    flat = {f"{row}|{col}": config for row, cols in table.items() for col, config in cols.items()}
    results = run_scenarios(benchmark, flat)
    rows = {row: {col: results[f"{row}|{col}"] for col in cols} for row, cols in table.items()}
    print_ratio_rows("Table 5: fat-tree scale sweep", rows)

    for row, schemes in rows.items():
        for label, result in schemes.items():
            assert result.completion_fraction() == 1.0, f"{row}/{label}"
        assert (schemes["IRN"].summary.avg_slowdown
                <= 1.3 * schemes["RoCE+PFC"].summary.avg_slowdown), row
