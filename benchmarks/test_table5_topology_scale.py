"""Table 5: robustness of the basic results to the fat-tree scale.

Paper result (54/128/250 servers): the trends are unchanged as the fabric
grows.  The benchmark compares k=4 (16 hosts) with the paper's default k=6
(54 hosts) arity.

Each (row, scheme) cell runs over the spec's three-seed replica axis; the
ordering assertions are on :func:`aggregate_rows` means rather than a single
seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    aggregate_by_scheme,
    assert_all_completed,
    print_ratio_rows,
    run_scenarios,
)

FLOWS = 80
ARITIES = (4, 6)


def test_table5_topology_scale_sweep(benchmark):
    spec = scenarios.scenario("table5").with_rows(
        {f"k={k} ({k ** 3 // 4} hosts)": {"fat_tree_k": k} for k in ARITIES}
    )
    table = spec.tables(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))
    assert_all_completed(results)

    rows = {
        row: {col: results[f"{row}|{col} [seed={spec.seeds[0]}]"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 5: fat-tree scale sweep (seed 1)", rows)

    aggregates = aggregate_by_scheme(spec.configs(num_flows=FLOWS), results)
    for row in table:
        irn = aggregates[f"{row}|IRN"]
        roce_pfc = aggregates[f"{row}|RoCE+PFC"]
        assert irn["replicas"] == len(spec.seeds), row
        assert irn["avg_slowdown_mean"] <= 1.3 * roce_pfc["avg_slowdown_mean"], row
