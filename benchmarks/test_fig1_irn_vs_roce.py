"""Figure 1: IRN (without PFC) vs RoCE (with PFC), no explicit congestion control.

Paper result: IRN is 2.8-3.7x better across average slowdown, average FCT and
99th-percentile FCT.  At benchmark scale we expect the same ordering (IRN at
least matches RoCE+PFC on every metric and wins on slowdown).
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig1_irn_vs_roce(benchmark):
    configs = scenarios.fig1_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 1: IRN (no PFC) vs RoCE (PFC)", results)
    assert_all_completed(results)

    irn = results["IRN (without PFC)"]
    roce = results["RoCE (with PFC)"]
    # The paper's headline claim: IRN without PFC outperforms RoCE with PFC.
    assert irn.summary.avg_slowdown <= roce.summary.avg_slowdown
    # IRN runs on a lossy fabric (no pauses), RoCE's fabric pauses instead.
    assert irn.pause_frames == 0
    assert roce.packets_dropped == 0
