"""Figure 1: IRN (without PFC) vs RoCE (with PFC), no explicit congestion control.

Paper result: IRN is 2.8-3.7x better across average slowdown, average FCT and
99th-percentile FCT.  At benchmark scale we expect the same ordering (IRN at
least matches RoCE+PFC on every metric and wins on slowdown).

Each scheme runs over a three-seed axis in one sweep; the assertions are on
:func:`aggregate_rows` means with replica counts, paper-style, rather than a
single seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig1_irn_vs_roce(benchmark):
    base = scenarios.fig1_configs(num_flows=BENCH_FLOWS)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 1: IRN (no PFC) vs RoCE (PFC), per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    irn = aggregates["IRN (without PFC)"]
    roce = aggregates["RoCE (with PFC)"]
    for record in (irn, roce):
        assert record["replicas"] == len(BENCH_SEEDS)
        assert record["seeds"] == sorted(BENCH_SEEDS)
    # The paper's headline claim, on seed-averaged metrics: IRN without PFC
    # outperforms RoCE with PFC.
    assert irn["avg_slowdown_mean"] <= roce["avg_slowdown_mean"]
    # Pooled tail over all replicas' flows (merged digests), same ordering.
    assert irn["fct_p99_s"] <= 1.5 * roce["fct_p99_s"]
    # IRN runs on a lossy fabric (no pauses), RoCE's fabric pauses instead --
    # across every replica.
    assert irn["pause_frames_total"] == 0
    assert roce["packets_dropped_total"] == 0
