"""Figure 8: tail CDF of single-packet message latency.

Paper result: IRN (without PFC) has lower tail latency for single-packet
messages than RoCE (with PFC) across all three congestion-control settings,
because the low RTO_low recovers lost single-packet messages quickly while
PFC makes them wait behind paused queues.

Every scheme runs over the spec's three-seed replica axis
(``scenario("fig8").seeds``) in one sweep; the tail assertions are on
*pooled* percentiles -- the per-replica quantile digests merged by
:func:`aggregate_rows` into one distribution over every flow of every
replica -- rather than a single seed's draw.
"""

from repro.experiments import scenarios
from repro.metrics.report import format_tail_cdf

from benchmarks.conftest import (
    aggregate_by_scheme,
    print_metric_table,
    run_scenarios,
)

FLOWS = 100


def test_fig8_single_packet_tail_latency(benchmark):
    spec = scenarios.scenario("fig8")
    base = spec.configs(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))
    print_metric_table("Figure 8 inputs (all flows, per replica)", results)

    aggregates = aggregate_by_scheme(base, results)
    print("\n=== Figure 8: pooled single-packet latency tail over "
          f"{len(spec.seeds)} seeds (ms) ===")
    print(f"{'scheme':<36} {'msgs':>5} {'p90':>9} {'p99':>9} {'p99.9':>9}")
    tails = {}
    for label, record in aggregates.items():
        assert record["replicas"] == len(spec.seeds), label
        assert record["seeds"] == sorted(spec.seeds)
        assert record.get("single_packet_flows", 0) > 0, (
            f"{label}: no single-packet messages completed"
        )
        percentiles = tuple(
            record[f"single_packet_p{tag}_s"] * 1e3 for tag in ("90", "99", "999")
        )
        tails[label] = percentiles
        print(f"{label:<36} {record['single_packet_flows']:>5d} "
              f"{percentiles[0]:>9.4f} {percentiles[1]:>9.4f} {percentiles[2]:>9.4f}")

    for cc in ("none", "timely", "dcqcn"):
        irn = tails[f"IRN (without PFC) +{cc}"]
        roce = tails[f"RoCE (with PFC) +{cc}"]
        # IRN's pooled 99th-percentile single-packet latency stays competitive
        # with (paper: significantly better than) RoCE+PFC.
        assert irn[1] <= 1.5 * roce[1]

    # The tail's shape, straight from one replica's digest (Figure 8's two
    # extremes; aggregates pool the numbers above, the CDF shows the shape).
    for label in ("RoCE (with PFC) +none", "IRN (without PFC) +none"):
        row = results[f"{label} [seed=1]"]
        print()
        print(format_tail_cdf(
            row.single_packet_distribution,
            title=f"{label}: single-packet latency tail (seed 1)",
        ))
