"""Figure 8: tail CDF of single-packet message latency.

Paper result: IRN (without PFC) has lower tail latency for single-packet
messages than RoCE (with PFC) across all three congestion-control settings,
because the low RTO_low recovers lost single-packet messages quickly while
PFC makes them wait behind paused queues.
"""

from repro.experiments import scenarios
from repro.metrics.stats import percentile

from benchmarks.conftest import BENCH_SEED, print_metric_table, run_scenarios_full


def test_fig8_single_packet_tail_latency(benchmark):
    # Runs serially via run_scenarios_full: the per-flow latency CDF below
    # needs the MetricsCollector, which the sweep's flat rows drop.
    configs = scenarios.fig8_configs(num_flows=100, seed=BENCH_SEED)
    results = run_scenarios_full(benchmark, configs)
    print_metric_table("Figure 8 inputs (all flows)", results)

    print("\n=== Figure 8: single-packet message latency tail (ms) ===")
    print(f"{'scheme':<36} {'p90':>9} {'p99':>9} {'p99.9':>9}")
    tails = {}
    for label, result in results.items():
        latencies = result.collector.single_packet_latencies()
        assert latencies, f"{label}: no single-packet messages completed"
        row = tuple(percentile(latencies, f) * 1e3 for f in (0.90, 0.99, 0.999))
        tails[label] = row
        print(f"{label:<36} {row[0]:>9.4f} {row[1]:>9.4f} {row[2]:>9.4f}")

    for cc in ("none", "timely", "dcqcn"):
        irn = tails[f"IRN (without PFC) +{cc}"]
        roce = tails[f"RoCE (with PFC) +{cc}"]
        # IRN's 99th-percentile single-packet latency stays competitive with
        # (paper: significantly better than) RoCE+PFC.
        assert irn[1] <= 1.5 * roce[1]
