"""Figure 8: tail CDF of single-packet message latency.

Paper result: IRN (without PFC) has lower tail latency for single-packet
messages than RoCE (with PFC) across all three congestion-control settings,
because the low RTO_low recovers lost single-packet messages quickly while
PFC makes them wait behind paused queues.

Runs through :func:`run_sweep` like every other figure (parallel-capable and
cache-hitting): the per-flow latency distribution travels as a mergeable
quantile digest on each :class:`ResultRow`, so the heavyweight in-process
``MetricsCollector`` path is no longer needed.  At this scenario scale the
digests hold well under their exact-mode ceiling, so the percentiles below
are bit-identical to the retired serial computation; beyond that ceiling the
sketch documents a <= 1% relative error, inside the 2% acceptance envelope.
"""

from repro.experiments import scenarios
from repro.metrics.report import format_tail_cdf

from benchmarks.conftest import BENCH_SEED, print_metric_table, run_scenarios


def test_fig8_single_packet_tail_latency(benchmark):
    configs = scenarios.fig8_configs(num_flows=100, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 8 inputs (all flows)", results)

    print("\n=== Figure 8: single-packet message latency tail (ms) ===")
    print(f"{'scheme':<36} {'msgs':>5} {'p90':>9} {'p99':>9} {'p99.9':>9}")
    tails = {}
    for label, row in results.items():
        assert row.single_packet_count > 0, f"{label}: no single-packet messages completed"
        # Small-sample digests stay exact, so these percentiles match the
        # per-flow list computation exactly.
        assert row.single_packet_distribution.is_exact
        percentiles = tuple(
            row.single_packet_percentile(f) * 1e3 for f in (0.90, 0.99, 0.999)
        )
        tails[label] = percentiles
        print(f"{label:<36} {row.single_packet_count:>5d} "
              f"{percentiles[0]:>9.4f} {percentiles[1]:>9.4f} {percentiles[2]:>9.4f}")

    for cc in ("none", "timely", "dcqcn"):
        irn = tails[f"IRN (without PFC) +{cc}"]
        roce = tails[f"RoCE (with PFC) +{cc}"]
        # IRN's 99th-percentile single-packet latency stays competitive with
        # (paper: significantly better than) RoCE+PFC.
        assert irn[1] <= 1.5 * roce[1]

    # The tail's shape, straight from the digests (Figure 8's two extremes).
    for label in ("RoCE (with PFC) +none", "IRN (without PFC) +none"):
        print()
        print(format_tail_cdf(
            results[label].single_packet_distribution,
            title=f"{label}: single-packet latency tail",
        ))
