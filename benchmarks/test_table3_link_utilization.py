"""Table 3: robustness of the basic results to the offered load (30%-90%).

Paper result: IRN (no PFC) beats RoCE+PFC at every load, and the advantage of
running without PFC grows with load as congestion spreading worsens.
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, print_ratio_rows, run_scenarios


def test_table3_link_utilization_sweep(benchmark):
    table = scenarios.table3_configs(utilizations=(0.3, 0.6, 0.9), num_flows=90, seed=BENCH_SEED)
    flat = {f"{row}|{col}": config for row, cols in table.items() for col, config in cols.items()}
    results = run_scenarios(benchmark, flat)
    rows = {
        row: {col: results[f"{row}|{col}"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 3: link utilization sweep", rows)

    for row, schemes in rows.items():
        irn = schemes["IRN"].summary
        roce_pfc = schemes["RoCE+PFC"].summary
        # IRN without PFC stays at least competitive with RoCE+PFC at every load.
        assert irn.avg_slowdown <= 1.25 * roce_pfc.avg_slowdown, row
