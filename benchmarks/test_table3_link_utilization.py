"""Table 3: robustness of the basic results to the offered load (30%-90%).

Paper result: IRN (no PFC) beats RoCE+PFC at every load, and the advantage of
running without PFC grows with load as congestion spreading worsens.

Each (row, scheme) cell runs over the spec's three-seed replica axis; the
ordering assertions are on :func:`aggregate_rows` means rather than a single
seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    aggregate_by_scheme,
    print_ratio_rows,
    run_scenarios,
)

FLOWS = 90
UTILIZATIONS = (0.3, 0.6, 0.9)


def test_table3_link_utilization_sweep(benchmark):
    spec = scenarios.scenario("table3").with_rows(
        {f"{int(u * 100)}%": {"target_load": u} for u in UTILIZATIONS}
    )
    table = spec.tables(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))

    rows = {
        row: {col: results[f"{row}|{col} [seed={spec.seeds[0]}]"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 3: link utilization sweep (seed 1)", rows)

    aggregates = aggregate_by_scheme(spec.configs(num_flows=FLOWS), results)
    for row in table:
        irn = aggregates[f"{row}|IRN"]
        roce_pfc = aggregates[f"{row}|RoCE+PFC"]
        assert irn["replicas"] == len(spec.seeds), row
        assert irn["seeds"] == sorted(spec.seeds), row
        # IRN without PFC stays at least competitive with RoCE+PFC at every
        # load, on seed-averaged slowdown.
        assert irn["avg_slowdown_mean"] <= 1.25 * roce_pfc["avg_slowdown_mean"], row
