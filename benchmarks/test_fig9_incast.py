"""Figure 9 and §4.4.3: incast request completion time, with and without cross traffic.

Paper result: incast without cross traffic is PFC's best case, yet IRN's RCT
stays within ~2.5% of RoCE's; with cross traffic IRN wins on both the incast
RCT (4-30%) and the background workload (32-87%).

Every cell runs over a three-seed axis; the RCT ratio and the background
slowdown ordering are asserted on means over the replicas (the incast RCT is
not one of the digest-aggregated headline metrics, so it is averaged here).
"""

from repro.experiments import scenarios
from repro.metrics.stats import mean

from benchmarks.conftest import BENCH_SEEDS, run_scenarios, seed_replicas
from repro.experiments.spec import replica_label


def _replica_mean(results, label, metric):
    values = [getattr(results[replica_label(label, seed)], metric) for seed in BENCH_SEEDS]
    assert all(value is not None for value in values), label
    return mean(values)


def test_fig9_incast_rct_ratio(benchmark):
    fan_ins = (5, 10)
    configs = scenarios.fig9_configs(fan_ins=fan_ins, total_bytes=2_000_000)
    configs.update(
        {
            "cross-traffic " + label: config
            for label, config in scenarios.incast_with_cross_traffic_configs(
                fan_in=8, total_bytes=1_500_000, num_flows=60
            ).items()
        }
    )
    results = run_scenarios(benchmark, seed_replicas(configs))

    print("\n=== Figure 9: incast RCT, IRN (no PFC) vs RoCE (PFC), seed-averaged ===")
    print(f"{'fan-in M':>9} {'RoCE RCT (ms)':>14} {'IRN RCT (ms)':>14} {'IRN/RoCE':>9}")
    for fan_in in fan_ins:
        roce = _replica_mean(results, f"RoCE M={fan_in}", "incast_rct_s")
        irn = _replica_mean(results, f"IRN M={fan_in}", "incast_rct_s")
        ratio = irn / roce
        print(f"{fan_in:>9} {roce * 1e3:>14.3f} {irn * 1e3:>14.3f} {ratio:>9.3f}")
        # Paper: the ratio stays close to 1 (within a few percent at scale).
        assert ratio <= 1.3

    print("\n=== §4.4.3: incast with 50%-load cross traffic, seed-averaged ===")
    print(f"{'scheme':<34} {'incast RCT (ms)':>16} {'bg avg slowdown':>16}")
    cross_labels = sorted(
        {label for label in configs if label.startswith("cross-traffic")}
    )
    bg_slowdown = {}
    for label in cross_labels:
        rct = _replica_mean(results, label, "incast_rct_s")
        bg_slowdown[label] = _replica_mean(
            results, label, "background_avg_slowdown"
        )
        print(f"{label:<34} {rct * 1e3:>16.3f} {bg_slowdown[label]:>16.2f}")

    # With cross traffic present, IRN's background workload does not lose to
    # RoCE+PFC (the paper shows a 32-87% win) -- on seed-averaged slowdown.
    assert (bg_slowdown["cross-traffic IRN (without PFC)"]
            <= 1.2 * bg_slowdown["cross-traffic RoCE (with PFC)"])
