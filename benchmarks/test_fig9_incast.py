"""Figure 9 and §4.4.3: incast request completion time, with and without cross traffic.

Paper result: incast without cross traffic is PFC's best case, yet IRN's RCT
stays within ~2.5% of RoCE's; with cross traffic IRN wins on both the incast
RCT (4-30%) and the background workload (32-87%).
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, run_scenarios


def test_fig9_incast_rct_ratio(benchmark):
    fan_ins = (5, 10)
    configs = scenarios.fig9_configs(fan_ins=fan_ins, total_bytes=2_000_000, seed=BENCH_SEED)
    configs.update(
        {
            "cross-traffic " + label: config
            for label, config in scenarios.incast_with_cross_traffic_configs(
                fan_in=8, total_bytes=1_500_000, num_flows=60, seed=BENCH_SEED
            ).items()
        }
    )
    results = run_scenarios(benchmark, configs)

    print("\n=== Figure 9: incast RCT, IRN (no PFC) vs RoCE (PFC) ===")
    print(f"{'fan-in M':>9} {'RoCE RCT (ms)':>14} {'IRN RCT (ms)':>14} {'IRN/RoCE':>9}")
    for fan_in in fan_ins:
        roce = results[f"RoCE M={fan_in}"].incast_rct_s
        irn = results[f"IRN M={fan_in}"].incast_rct_s
        assert roce is not None and irn is not None
        ratio = irn / roce
        print(f"{fan_in:>9} {roce * 1e3:>14.3f} {irn * 1e3:>14.3f} {ratio:>9.3f}")
        # Paper: the ratio stays close to 1 (within a few percent at scale).
        assert ratio <= 1.3

    print("\n=== §4.4.3: incast with 50%-load cross traffic ===")
    print(f"{'scheme':<34} {'incast RCT (ms)':>16} {'bg avg slowdown':>16}")
    cross = {label: r for label, r in results.items() if label.startswith("cross-traffic")}
    for label, result in cross.items():
        rct = result.incast_rct_s
        background = result.background_summary
        assert rct is not None and background is not None
        print(f"{label:<34} {rct * 1e3:>16.3f} {background.avg_slowdown:>16.2f}")

    irn_cross = cross["cross-traffic IRN (without PFC)"]
    roce_cross = cross["cross-traffic RoCE (with PFC)"]
    # With cross traffic present, IRN's background workload does not lose to
    # RoCE+PFC (the paper shows a 32-87% win).
    assert (irn_cross.background_summary.avg_slowdown
            <= 1.2 * roce_cross.background_summary.avg_slowdown)
