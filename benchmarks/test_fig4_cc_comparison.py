"""Figure 4: IRN vs RoCE when explicit congestion control (Timely/DCQCN) is used.

Paper result: IRN stays 1.5-2.2x better than RoCE across the three metrics
even once Timely or DCQCN is enabled.

Each scheme runs over a three-seed axis; the ordering assertion is on
:func:`aggregate_rows` means rather than a single seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig4_irn_vs_roce_with_congestion_control(benchmark):
    base = scenarios.fig4_configs(num_flows=BENCH_FLOWS)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 4: IRN vs RoCE with Timely / DCQCN, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    for cc in ("timely", "dcqcn"):
        irn = aggregates[f"IRN +{cc}"]
        roce = aggregates[f"RoCE +{cc}"]
        assert irn["replicas"] == len(BENCH_SEEDS)
        # IRN (no PFC) remains at least competitive with RoCE (PFC) under CC
        # on seed-averaged slowdown.
        assert irn["avg_slowdown_mean"] <= 1.15 * roce["avg_slowdown_mean"]
