"""Figure 4: IRN vs RoCE when explicit congestion control (Timely/DCQCN) is used.

Paper result: IRN stays 1.5-2.2x better than RoCE across the three metrics
even once Timely or DCQCN is enabled.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig4_irn_vs_roce_with_congestion_control(benchmark):
    configs = scenarios.fig4_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 4: IRN vs RoCE with Timely / DCQCN", results)
    assert_all_completed(results)

    for cc in ("timely", "dcqcn"):
        irn = results[f"IRN +{cc}"]
        roce = results[f"RoCE +{cc}"]
        # IRN (no PFC) remains at least competitive with RoCE (PFC) under CC.
        assert irn.summary.avg_slowdown <= 1.15 * roce.summary.avg_slowdown
