"""Figure 12: IRN with worst-case implementation overheads (§6.3).

Paper result: adding 16 bytes of extra headers to every packet and a 2 us
PCIe fetch delay for retransmissions costs IRN only 4-7%, leaving it 35-63%
better than RoCE (with PFC).
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEED,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
)


def test_fig12_worst_case_overheads(benchmark):
    configs = scenarios.fig12_configs(num_flows=BENCH_FLOWS, seed=BENCH_SEED)
    results = run_scenarios(benchmark, configs)
    print_metric_table("Figure 12: IRN implementation overheads", results)
    assert_all_completed(results)

    plain = results["IRN (no overheads)"]
    worst = results["IRN (worst-case overheads)"]
    roce = results["RoCE (with PFC)"]
    # The modelled overheads cost only a few percent...
    assert worst.summary.avg_fct <= 1.15 * plain.summary.avg_fct
    # ...and IRN stays at least competitive with the RoCE+PFC baseline.
    assert worst.summary.avg_slowdown <= 1.1 * roce.summary.avg_slowdown
