"""Figure 12: IRN with worst-case implementation overheads (§6.3).

Paper result: adding 16 bytes of extra headers to every packet and a 2 us
PCIe fetch delay for retransmissions costs IRN only 4-7%, leaving it 35-63%
better than RoCE (with PFC).

Each scheme runs over a three-seed axis; the cost/ordering assertions are on
:func:`aggregate_rows` means rather than a single seed's draw.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    BENCH_FLOWS,
    BENCH_SEEDS,
    aggregate_by_scheme,
    assert_all_completed,
    print_metric_table,
    run_scenarios,
    seed_replicas,
)


def test_fig12_worst_case_overheads(benchmark):
    base = scenarios.fig12_configs(num_flows=BENCH_FLOWS)
    results = run_scenarios(benchmark, seed_replicas(base))
    print_metric_table("Figure 12: IRN implementation overheads, per replica", results)
    assert_all_completed(results)

    aggregates = aggregate_by_scheme(base, results)
    plain = aggregates["IRN (no overheads)"]
    worst = aggregates["IRN (worst-case overheads)"]
    roce = aggregates["RoCE (with PFC)"]
    assert plain["replicas"] == len(BENCH_SEEDS)
    # The modelled overheads cost only a few percent on seed-averaged FCT...
    assert worst["avg_fct_s_mean"] <= 1.15 * plain["avg_fct_s_mean"]
    # ...and IRN stays at least competitive with the RoCE+PFC baseline.
    assert worst["avg_slowdown_mean"] <= 1.1 * roce["avg_slowdown_mean"]
