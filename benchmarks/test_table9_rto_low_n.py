"""Table 9: sensitivity of IRN to the in-flight threshold N for using RTO_low.

Paper result: raising N from 3 to 10 or 15 produces only very small
differences -- IRN is robust to how its timeout parameters are set.

Each (row, scheme) cell runs over the spec's three-seed replica axis; the
robustness assertion compares :func:`aggregate_rows` means across rows
instead of a single seed's draw.  The benchmark sweeps the extreme thresholds
(N=3 vs N=15); the registered ``table9`` scenario carries the paper's full
(3, 10, 15) sweep.
"""

from repro.experiments import scenarios

from benchmarks.conftest import (
    aggregate_by_scheme,
    print_ratio_rows,
    run_scenarios,
)

FLOWS = 90
N_VALUES = (3, 15)


def test_table9_rto_low_threshold_sweep(benchmark):
    spec = scenarios.scenario("table9").with_rows(
        {f"N={n}": {"rto_low_threshold_packets": n} for n in N_VALUES}
    )
    table = spec.tables(num_flows=FLOWS)
    results = run_scenarios(benchmark, spec.replicated(num_flows=FLOWS))

    rows = {
        row: {col: results[f"{row}|{col} [seed={spec.seeds[0]}]"] for col in cols}
        for row, cols in table.items()
    }
    print_ratio_rows("Table 9: RTO_low threshold (N) sweep (seed 1)", rows)

    aggregates = aggregate_by_scheme(spec.configs(num_flows=FLOWS), results)
    irn_fcts = []
    for row in table:
        record = aggregates[f"{row}|IRN"]
        assert record["replicas"] == len(spec.seeds), row
        assert record["avg_fct_s_ci95"] >= 0.0
        irn_fcts.append(record["avg_fct_s_mean"])
    # Robustness: the seed-averaged IRN FCT barely moves across thresholds.
    assert max(irn_fcts) <= 1.5 * min(irn_fcts)
    for label, result in results.items():
        if "|IRN " in label or label.endswith("|IRN"):
            assert result.completion_fraction() == 1.0, label
