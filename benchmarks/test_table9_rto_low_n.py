"""Table 9: sensitivity of IRN to the in-flight threshold N for using RTO_low.

Paper result: raising N from 3 to 10 or 15 produces only very small
differences -- IRN is robust to how its timeout parameters are set.
"""

from repro.experiments import scenarios

from benchmarks.conftest import BENCH_SEED, print_ratio_rows, run_scenarios


def test_table9_rto_low_threshold_sweep(benchmark):
    table = scenarios.table9_configs(n_values=(3, 10, 15), num_flows=90, seed=BENCH_SEED)
    flat = {f"{row}|{col}": config for row, cols in table.items() for col, config in cols.items()}
    results = run_scenarios(benchmark, flat)
    rows = {row: {col: results[f"{row}|{col}"] for col in cols} for row, cols in table.items()}
    print_ratio_rows("Table 9: RTO_low threshold (N) sweep", rows)

    irn_fcts = [schemes["IRN"].summary.avg_fct for schemes in rows.values()]
    assert max(irn_fcts) <= 1.5 * min(irn_fcts)
    for schemes in rows.values():
        assert schemes["IRN"].completion_fraction() == 1.0
