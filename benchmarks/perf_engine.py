#!/usr/bin/env python3
"""Engine throughput suite (not a pytest benchmark).

Measures events per second of the discrete-event engine on five workloads,
each run under **both** scheduler cores (``queue="heap"`` and the default
``queue="calendar"``), so every report carries a machine-independent
*speedup ratio* alongside the absolute rates:

* ``churn``      -- a synthetic self-rescheduling event chain plus the
  transports' set-then-cancel retransmission-timer pattern (3 cancelled
  320us wheel timers per executed event).  Pure engine, no fabric.
* ``saturated``  -- IRN fixed-size flows driving a lossy star fabric at
  saturation: long busy periods, the departure-batching fast path, and the
  receiver ACK pipeline under steady in-order delivery.
* ``incast``     -- a 30-to-1 incast request on PFC (Figure 9's regime):
  synchronized arrivals, deep queues, pause/resume storms.
* ``irn_timer``  -- IRN on a lossy fabric at high load: NACK-driven
  recovery, per-packet RTO arm/cancel, the timer-wheel's home turf.
* ``ack_heavy``  -- many small DCQCN-paced IRN flows at full load: the
  regime ACK coalescing and pacing quantization were built for.  Also
  measured once with both knobs forced off to report the *event-count
  reduction* the transport-level batching delivers.
* ``macro``      -- one full scaled-down Figure 1 IRN run, the end-to-end
  number the ROADMAP tracks.
* ``wan_macro``  -- drain a WAN-BDP backlog: a million packet arrivals
  scattered over two in-flight RTTs of a 1 ms long-haul path against a
  0.32 us serialization quantum (a 100 GbE port on a 1000x-heterogeneous
  inter-DC fabric).  Pure
  engine, no fabric: this is the regime the hierarchical calendar exists
  for, so it is additionally measured with the calendar forced to a single
  level (``num_levels=1``) and reports ``speedup_hier`` -- hierarchical over
  single-quantum throughput.  The single-quantum calendar parks nearly every
  arrival in its far-future heap and degenerates to heap-core performance;
  the guarded floor for the ratio is 3x.

All cores execute identical event streams (asserted after every run), so
the per-workload events/s values are directly comparable.  When the
compiled core has been built (``python -m repro.sim.compiled --build``) a
``calendar_c`` column is measured and guarded too; without it the suite
silently reports the two pure-Python cores only.

Run with::

    PYTHONPATH=src python benchmarks/perf_engine.py [--json BENCH_engine.json]
        [--check benchmarks/BENCH_baseline.json] [--tolerance 0.25]
        [--update-baseline benchmarks/BENCH_baseline.json]

``--json`` writes all rates plus interpreter/platform metadata; CI uploads
one per build as an artifact so the engine's throughput trajectory
accumulates across commits.  ``--check`` compares the measured
calendar/heap speedups against a checked-in baseline and exits non-zero on
a regression beyond ``--tolerance`` (default 25%); ratios, not absolute
rates, are guarded because CI machines differ while the two cores always
share one machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.sim.engine import Simulator

#: Workloads whose calendar/heap speedup the CI guard checks.
GUARDED_WORKLOADS = ("churn", "macro", "wan_macro")

#: Workloads whose ACK-coalescing event reduction the guard checks, and the
#: floor it must clear (the PR's acceptance criterion).
REDUCTION_GUARD = {"saturated": 0.30, "ack_heavy": 0.30}

#: Workloads additionally measured with the calendar forced to one level
#: (``num_levels=1``, the pre-hierarchy single-quantum calendar), reporting
#: ``speedup_hier`` = hierarchical / single-quantum throughput.  ``macro``
#: rides along to pin *parity* on a homogeneous fabric, where both layouts
#: keep every event in the level-0 window.
HIER_WORKLOADS = ("macro", "wan_macro")

#: Absolute floor for ``speedup_hier`` per workload (None = report only).
#: Same-machine ratio of two interleaved runs, so no tolerance applies; the
#: wan_macro floor is the hierarchical-calendar acceptance criterion.
HIER_GUARD = {"wan_macro": 3.0, "macro": None}


def cores() -> tuple:
    """Scheduler cores to measure: the compiled one only when built."""
    from repro.sim import compiled

    names = ["heap", "calendar"]
    if compiled.available():
        names.append("calendar_c")
    return tuple(names)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def churn(queue: str, num_events: int = 300_000, fanout: int = 4, **sim_kwargs):
    """Self-sustaining event churn; returns ``(events, elapsed_s)``."""
    sim = Simulator(seed=1, queue=queue, **sim_kwargs)
    state = {"remaining": num_events}

    def tick(depth: int) -> None:
        if state["remaining"] <= 0:
            return
        state["remaining"] -= 1
        # Schedule one live continuation and a few cancelled timers,
        # mimicking the RTO-set/RTO-cancel pattern of the transports.
        keep = sim.schedule(1e-6, tick, depth + 1)
        for _ in range(fanout - 1):
            sim.cancel(sim.set_timer(320e-6, tick, depth + 1))
        del keep

    sim.schedule(0.0, tick, 0)
    start = time.perf_counter()
    sim.run_until_idle()
    return sim.events_processed, time.perf_counter() - start


def wan_macro(
    queue: str,
    population: int = 1_000_000,
    horizon_s: float = 4e-3,
    **sim_kwargs,
):
    """Drain a WAN-BDP backlog; returns ``(events, elapsed_s)``.

    ``population`` packet arrivals are scattered over a ``horizon_s``
    window -- two in-flight RTTs of a 1 ms long-haul path -- while the
    calendar keeps its 0.32 us serialization quantum (100 GbE): the 1000x
    delay-heterogeneity regime of an inter-DC fabric, where near-window
    arrivals behave like intra-rack traffic and the bulk sits
    propagation-delay away.  A golden-ratio
    scatter decorrelates arrival order from firing order (like real packet
    interleaving) without consuming RNG state.  Only the drain is on the
    clock; the hierarchical layout absorbs the backlog in upper-level
    buckets at O(1) per event where a single-level calendar pays a
    far-future heap push *and* an O(log n) pop-per-event migration.
    """
    sim = Simulator(seed=1, queue=queue, bucket_width_s=0.32e-6, **sim_kwargs)
    fired = [0]

    def arrive() -> None:
        fired[0] += 1

    schedule_at = sim.schedule_at
    phi = 0.6180339887498949
    acc = 0.0
    for _ in range(population):
        acc += phi
        schedule_at(horizon_s * (acc - int(acc)), arrive)
    start = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - start
    assert fired[0] == population
    return sim.events_processed, elapsed


def _scenario_workload(config):
    """Build a ``(queue) -> (events, elapsed)`` runner for one experiment."""

    def run(queue: str, **sim_kwargs):
        from repro.experiments.runner import (
            _build_network,
            _FlowLauncher,
            _generate_flows,
            bucket_width_for,
        )
        from repro.metrics.collector import MetricsCollector

        sim = Simulator(
            seed=config.seed,
            queue=queue,
            bucket_width_s=bucket_width_for(config),
            **sim_kwargs,
        )
        network = _build_network(sim, config)
        collector = MetricsCollector(
            network,
            mtu_bytes=config.mtu_bytes,
            header_bytes=config.effective_header_bytes(),
        )
        launcher = _FlowLauncher(sim, network, config, collector)
        for flow in _generate_flows(config, network):
            sim.schedule_at(flow.start_time, launcher.launch, flow)
        start = time.perf_counter()
        sim.run(until=config.max_sim_time_s, max_events=config.max_events)
        return sim.events_processed, time.perf_counter() - start

    return run


def _saturated_config():
    # IRN without PFC so the receiver ACK path is actually on the clock:
    # the coalescing reduction below would be meaningless on a transport
    # that barely exercises it.
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        name="bench-saturated",
        topology="star",
        num_hosts=6,
        link_bandwidth_bps=10e9,
        link_delay_s=2e-6,
        transport="irn",
        pfc_enabled=False,
        workload="heavy_tailed",
        num_flows=150,
        target_load=1.0,
        flow_size_scale=0.3,
        seed=1,
        max_sim_time_s=1.0,
    )


def _incast_config():
    from repro.experiments.config import ExperimentConfig
    from repro.workload.incast import IncastParams

    return ExperimentConfig(
        name="bench-incast",
        topology="star",
        num_hosts=16,
        link_bandwidth_bps=10e9,
        link_delay_s=2e-6,
        transport="roce",
        pfc_enabled=True,
        workload="none",
        incast=IncastParams(total_bytes=3_000_000, fan_in=15),
        seed=1,
        max_sim_time_s=1.0,
    )


def _irn_timer_config():
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        name="bench-irn-timer",
        topology="star",
        num_hosts=8,
        link_bandwidth_bps=10e9,
        link_delay_s=2e-6,
        transport="irn",
        pfc_enabled=False,
        workload="heavy_tailed",
        num_flows=150,
        target_load=0.95,
        flow_size_scale=0.2,
        seed=1,
        max_sim_time_s=1.0,
    )


def _ack_heavy_config():
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        name="bench-ack-heavy",
        topology="star",
        num_hosts=8,
        link_bandwidth_bps=10e9,
        link_delay_s=2e-6,
        transport="irn",
        congestion_control="dcqcn",
        pfc_enabled=False,
        workload="fixed",
        fixed_size_bytes=64_000,
        num_flows=80,
        target_load=1.0,
        pacing_quantum_us=3.2,
        seed=1,
        max_sim_time_s=1.0,
    )


def _macro_config():
    from repro.experiments import scenarios

    return scenarios.fig1_configs(num_flows=120)["IRN (without PFC)"]


#: Configs re-run once with coalescing/quantization forced off so the
#: report can state the event-count reduction the batching delivers.
REDUCTION_CONFIGS = {
    "saturated": _saturated_config,
    "ack_heavy": _ack_heavy_config,
}


def workloads():
    """Ordered ``name -> (queue) -> (events, elapsed)`` mapping."""
    return {
        "churn": churn,
        "saturated": _scenario_workload(_saturated_config()),
        "incast": _scenario_workload(_incast_config()),
        "irn_timer": _scenario_workload(_irn_timer_config()),
        "ack_heavy": _scenario_workload(_ack_heavy_config()),
        "macro": _scenario_workload(_macro_config()),
        "wan_macro": wan_macro,
    }


def measure_reduction(name: str) -> dict:
    """Event counts with transport batching on vs off (single calendar run).

    "Off" pins per-packet ACKs and unquantized pacing
    (``ack_coalesce_n=1``, ``pacing_quantum_us=0``) -- the pre-batching
    event stream -- so the reported reduction is exactly what the
    transport-level work deleted, independent of machine speed.
    """
    config = REDUCTION_CONFIGS[name]()
    run_on = _scenario_workload(config)
    run_off = _scenario_workload(
        config.with_overrides(ack_coalesce_n=1, pacing_quantum_us=0.0)
    )
    events_on, _ = run_on("calendar")
    events_off, _ = run_off("calendar")
    return {
        "events_coalesced": events_on,
        "events_uncoalesced": events_off,
        "ack_event_reduction": 1.0 - events_on / events_off,
    }


# ---------------------------------------------------------------------------
# Measurement and the regression guard
# ---------------------------------------------------------------------------

def measure(names=None, repeats: int = 3) -> dict:
    """Run each workload on every core; best-of-``repeats`` rates + ratios."""
    table = workloads()
    if names:
        missing = sorted(set(names) - set(table))
        if missing:
            raise SystemExit(f"unknown workload(s): {missing}; valid: {sorted(table)}")
        table = {name: table[name] for name in table if name in names}
    active_cores = cores()
    report: dict = {}
    for name, fn in table.items():
        rates = {queue: 0.0 for queue in active_cores}
        flat_rate = 0.0
        events = {}
        # Interleave the cores so thermal/background drift hits all alike.
        for _ in range(repeats):
            for queue in active_cores:
                n, elapsed = fn(queue)
                events[queue] = n
                rates[queue] = max(rates[queue], n / elapsed)
            if name in HIER_WORKLOADS:
                # Same pure-Python calendar pinned to one level: the
                # pre-hierarchy single-quantum layout, byte-identical
                # event order, so the ratio is pure data-structure cost.
                n, elapsed = fn("calendar", num_levels=1)
                events["calendar@1level"] = n
                flat_rate = max(flat_rate, n / elapsed)
        if len(set(events.values())) != 1:
            raise SystemExit(
                f"{name}: cores diverged ({events}) -- determinism bug"
            )
        row = {"events": events["calendar"]}
        for queue in active_cores:
            row[f"{queue}_events_per_s"] = rates[queue]
        row["speedup"] = rates["calendar"] / rates["heap"]
        if "calendar_c" in rates:
            row["speedup_c"] = rates["calendar_c"] / rates["heap"]
        if name in HIER_WORKLOADS:
            row["single_level_events_per_s"] = flat_rate
            row["speedup_hier"] = rates["calendar"] / flat_rate
        if name in REDUCTION_CONFIGS:
            row.update(measure_reduction(name))
        report[name] = row
        columns = "   ".join(
            f"{queue} {rates[queue]:>10,.0f} ev/s" for queue in active_cores
        )
        extra = ""
        if "ack_event_reduction" in row:
            extra = f"  ack-batching deletes {row['ack_event_reduction']:.1%} of events"
        if "speedup_hier" in row:
            extra += f"  hier/1-level x{row['speedup_hier']:.2f}"
        print(
            f"{name:<10} {columns}   x{row['speedup']:.2f}"
            f"  ({events['calendar']} events){extra}"
        )
    return report


def check_against_baseline(report: dict, baseline: dict, tolerance: float) -> list:
    """Return failure strings for guarded ratios below their floors.

    Four guards: the calendar/heap speedup on :data:`GUARDED_WORKLOADS`
    (vs the checked-in baseline), the compiled-core speedup on the same
    workloads when both the extension and a baseline column are present,
    the absolute ACK-batching event reduction on :data:`REDUCTION_GUARD`
    workloads (a fixed floor -- deterministic event counts, no
    machine-speed term, so no tolerance applies), and the absolute
    hierarchical/single-quantum ``speedup_hier`` floors in
    :data:`HIER_GUARD` (two interleaved runs of the same interpreter on
    the same machine, so no tolerance applies there either).
    """
    failures = []
    base_workloads = baseline.get("workloads", {})
    for name in GUARDED_WORKLOADS:
        if name not in report or name not in base_workloads:
            continue
        for key, label in (("speedup", "calendar/heap"), ("speedup_c", "calendar_c/heap")):
            measured = report[name].get(key)
            expected = base_workloads[name].get(key)
            if measured is None or expected is None:
                continue
            floor = expected * (1.0 - tolerance)
            if measured < floor:
                failures.append(
                    f"{name}: {label} speedup {measured:.3f} fell below "
                    f"{floor:.3f} (baseline {expected:.3f} - {tolerance:.0%})"
                )
    for name, floor in REDUCTION_GUARD.items():
        measured = report.get(name, {}).get("ack_event_reduction")
        if measured is not None and measured < floor:
            failures.append(
                f"{name}: ack-batching event reduction {measured:.1%} fell "
                f"below the {floor:.0%} floor"
            )
    for name, floor in HIER_GUARD.items():
        if floor is None:
            continue
        measured = report.get(name, {}).get("speedup_hier")
        if measured is not None and measured < floor:
            failures.append(
                f"{name}: hierarchical/single-quantum speedup {measured:.2f} "
                f"fell below the {floor:.1f}x floor"
            )
    return failures


def _metadata(repeats: int) -> dict:
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "timestamp_s": time.time(),
        "repeats": repeats,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="Event-engine throughput suite")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the measured rates and run metadata to this JSON file",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per workload per core; the best rate is reported (default: 3)",
    )
    parser.add_argument(
        "--workloads", default=None,
        help="comma-separated subset to run (default: all)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare calendar/heap speedups against this baseline JSON and "
             "fail on a regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative speedup regression for --check (default: 0.25)",
    )
    parser.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="write the measured report as the new checked-in baseline",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    names = args.workloads.split(",") if args.workloads else None
    report = measure(names=names, repeats=args.repeats)

    payload = {"workloads": report, **_metadata(args.repeats)}
    # Trajectory-compatible aliases for the pre-suite BENCH_*.json schema.
    if "churn" in report:
        payload["churn_events_per_s"] = report["churn"]["calendar_events_per_s"]
    if "macro" in report:
        payload["macro_events_per_s"] = report["macro"]["calendar_events_per_s"]

    for path in filter(None, (args.json, args.update_baseline)):
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(report, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            raise SystemExit(1)
        guarded = ", ".join(n for n in GUARDED_WORKLOADS if n in report)
        print(f"perf guard ok ({guarded} within {args.tolerance:.0%} of baseline)")


if __name__ == "__main__":
    main()
