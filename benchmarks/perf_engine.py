#!/usr/bin/env python3
"""Event-loop throughput measurement (not a pytest benchmark).

Reports events per second for two workloads:

* ``churn``   -- a synthetic self-rescheduling event chain with a realistic
  fraction of cancelled timers (the pattern transports create: every data
  packet schedules an RTO that is almost always cancelled by its ACK).
* ``macro``   -- one full ``run_experiment`` of the scaled-down Figure 1
  scenario, measuring end-to-end simulator throughput.

Run with::

    PYTHONPATH=src python benchmarks/perf_engine.py [--json BENCH_xxx.json]

``--json`` additionally writes the rates (plus interpreter/platform metadata)
to a JSON file; CI uploads one per build as an artifact so the engine's
throughput trajectory accumulates across commits.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.sim.engine import Simulator


def churn(num_events: int = 400_000, fanout: int = 4) -> float:
    """Self-sustaining event churn; returns executed events per second."""
    sim = Simulator(seed=1)
    state = {"remaining": num_events}

    def tick(depth: int) -> None:
        if state["remaining"] <= 0:
            return
        state["remaining"] -= 1
        # Schedule a few future events and cancel most of them, mimicking the
        # RTO-set/RTO-cancel pattern of the transports.
        keep = sim.schedule(1e-6, tick, depth + 1)
        for _ in range(fanout - 1):
            sim.cancel(sim.schedule(2e-6, tick, depth + 1))
        del keep

    sim.schedule(0.0, tick, 0)
    start = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - start
    return sim.events_processed / elapsed


def macro() -> float:
    """Events per second of one scaled-down Figure 1 IRN run."""
    from repro.experiments import scenarios
    from repro.experiments.runner import _build_network, _generate_flows, _FlowLauncher
    from repro.metrics.collector import MetricsCollector

    config = scenarios.fig1_configs(num_flows=120)["IRN (without PFC)"]
    sim = Simulator(seed=config.seed)
    network = _build_network(sim, config)
    collector = MetricsCollector(
        network, mtu_bytes=config.mtu_bytes, header_bytes=config.effective_header_bytes()
    )
    launcher = _FlowLauncher(sim, network, config, collector)
    for flow in _generate_flows(config, network):
        sim.schedule_at(flow.start_time, launcher.launch, flow)
    start = time.perf_counter()
    sim.run(until=config.max_sim_time_s, max_events=config.max_events)
    elapsed = time.perf_counter() - start
    return sim.events_processed / elapsed


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="Event-engine throughput measurement")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the measured rates and run metadata to this JSON file",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per workload; the best rate is reported (default: 3)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = {}
    for name, fn in (("churn", churn), ("macro", macro)):
        rates = [fn() for _ in range(args.repeats)]
        best = max(rates)
        report[f"{name}_events_per_s"] = best
        print(f"{name:<6} {best:>12,.0f} events/s  (best of {len(rates)})")

    if args.json:
        report.update(
            python=sys.version.split()[0],
            implementation=platform.python_implementation(),
            platform=platform.platform(),
            machine=platform.machine(),
            timestamp_s=time.time(),
            repeats=args.repeats,
        )
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
