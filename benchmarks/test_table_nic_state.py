"""§6.1: additional NIC state introduced by IRN.

Paper result: 160 bits of per-QP state plus five BDP-sized bitmaps (640 bits
at 40 Gbps), 3 bytes per WQE and 10 shared bytes -- a total of 3-10% of the
NIC metadata cache for a couple thousand QPs and tens of thousands of WQEs,
even at 100 Gbps.
"""

import pytest

from repro.hw.nic_state import NicStateParams, compute_state_overhead


def test_nic_state_overhead_accounting(benchmark):
    def compute_both():
        return {
            "40 Gbps": compute_state_overhead(NicStateParams(link_bandwidth_bps=40e9)),
            "100 Gbps": compute_state_overhead(NicStateParams(link_bandwidth_bps=100e9)),
        }

    overheads = benchmark.pedantic(compute_both, rounds=1, iterations=1)

    print("\n=== §6.1: IRN's additional NIC state ===")
    for label, overhead in overheads.items():
        print(f"\n{label}:")
        for name, value in overhead.as_rows():
            print(f"  {name:<34} {value}")

    overhead_40g = overheads["40 Gbps"]
    assert overhead_40g.per_qp_state_bits == 160
    assert overhead_40g.bitmap_bits_each == 128
    assert overhead_40g.per_qp_bitmap_bits == 640
    assert overhead_40g.per_wqe_bytes == 3
    assert overhead_40g.shared_bytes == 10
    # The paper's claim: 3-10% of NIC cache, still modest at 100 Gbps.
    assert 0.03 <= overhead_40g.fraction_of_cache <= 0.10
    assert overheads["100 Gbps"].fraction_of_cache <= 0.15
